package experiments

import (
	"fmt"
	"io"

	"dynasym/internal/core"
	"dynasym/internal/interfere"
	"dynasym/internal/simrt"
	"dynasym/internal/topology"
	"dynasym/internal/workloads"
)

// Ablations beyond the paper: they isolate the contribution of individual
// design decisions called out in DESIGN.md (wake-time routing, the
// no-steal rule for critical tasks, the PTT weight, and the dHEFT
// baseline).

// stealablePolicy wraps a policy and re-enables stealing of high-priority
// tasks, ablating the paper's "disable stealing of high priority tasks"
// rule.
type stealablePolicy struct{ core.Policy }

func (p stealablePolicy) Name() string             { return p.Policy.Name() + "+steal" }
func (p stealablePolicy) AllowPrioritySteal() bool { return true }

// noWakePolicy wraps a policy and disables wake-time routing, leaving only
// the dispatch-time decision: newly ready critical tasks stay on the waking
// worker's queue.
type noWakePolicy struct{ core.Policy }

func (p noWakePolicy) Name() string { return p.Policy.Name() + "-wake" }
func (p noWakePolicy) WakePlace(*core.Context) (int, bool) {
	return 0, false
}

// AblationConfig selects the variant set and reuses the Figure 4a scenario
// (MatMul DAG, co-runner on Denver core 0).
type AblationConfig struct {
	Variant      string // "steal", "wake", "dheft", "alpha"
	Parallelisms []int
	Seed         uint64
	Scale        Scale
}

// Ablation runs the selected variant comparison.
func Ablation(cfg AblationConfig) (*ThroughputGrid, error) {
	if len(cfg.Parallelisms) == 0 {
		cfg.Parallelisms = []int{2, 4, 6}
	}
	var policies []core.Policy
	title := ""
	switch cfg.Variant {
	case "steal":
		policies = []core.Policy{core.DAMC(), stealablePolicy{core.DAMC()}, core.DAMP(), stealablePolicy{core.DAMP()}}
		title = "Ablation: stealing of high-priority tasks re-enabled"
	case "wake":
		policies = []core.Policy{core.DAMC(), noWakePolicy{core.DAMC()}, core.DA(), noWakePolicy{core.DA()}}
		title = "Ablation: wake-time routing disabled (dispatch-only placement)"
	case "dheft":
		policies = []core.Policy{core.RWS(), core.DHEFT(), core.DA(), core.DAMC()}
		title = "Ablation: dHEFT earliest-finish-time baseline"
	case "sampled":
		policies = []core.Policy{core.DAMC(), core.NewSampled(core.DAMC(), 4), core.NewSampled(core.DAMC(), 16)}
		title = "Ablation: sampled global search (the paper's scalability future work)"
	default:
		return nil, fmt.Errorf("experiments: unknown ablation variant %q (want steal|wake|dheft|alpha)", cfg.Variant)
	}
	grid := Fig4(Fig4Config{
		Kernel:       workloads.MatMul,
		Parallelisms: cfg.Parallelisms,
		Policies:     policies,
		Seed:         cfg.Seed,
		Scale:        cfg.Scale,
	})
	grid.Title = title
	return grid, nil
}

// AblationAlpha sweeps the PTT weight under DVFS (complementing Figure 8's
// co-run sweep): adaptation speed matters most when conditions flip every
// five seconds.
func AblationAlpha(cfg AblationConfig) *AlphaResult {
	alphas := []float64{1.0 / 5, 2.0 / 5, 3.0 / 5, 4.0 / 5, 1.0}
	res := &AlphaResult{Alphas: alphas}
	for _, alpha := range alphas {
		grid := fig7WithAlpha(cfg, alpha)
		res.Tput = append(res.Tput, grid.Get("DAM-C", 4))
	}
	return res
}

func fig7WithAlpha(cfg AblationConfig, alpha float64) *ThroughputGrid {
	f := Fig7Config{
		Kernel:       workloads.MatMul,
		Parallelisms: []int{4},
		Policies:     []core.Policy{core.DAMC()},
		Seed:         cfg.Seed,
		Scale:        cfg.Scale,
	}.defaults()
	grid := &ThroughputGrid{
		Title:    "ablation-alpha",
		XLabel:   "P",
		X:        f.Parallelisms,
		Policies: policyNames(f.Policies),
		Tput:     make([][]float64, len(f.Policies)),
	}
	// Reuse Fig7 with a per-run alpha by inlining its loop.
	wcfg := workloads.SyntheticConfig{Kernel: f.Kernel}.Defaults()
	wcfg.Tasks = f.Scale.Apply(wcfg.Tasks, 600)
	for i, pol := range f.Policies {
		grid.Tput[i] = make([]float64, len(f.Parallelisms))
		for j, par := range f.Parallelisms {
			grid.Tput[i][j] = runDVFSOnce(f, wcfg, pol, par, alpha)
		}
	}
	return grid
}

// AlphaResult holds the DVFS alpha sweep.
type AlphaResult struct {
	Alphas []float64
	Tput   []float64
}

// Render prints the sweep.
func (r *AlphaResult) Render(w io.Writer) {
	fmt.Fprintln(w, "# Ablation: PTT new-sample weight under DVFS (DAM-C, MatMul, P=4)")
	for i, a := range r.Alphas {
		fmt.Fprintf(w, "alpha=%.1f  %10.0f tasks/s\n", a, r.Tput[i])
	}
}

// AblationInfer compares user-annotated criticality against CATS-style
// inferred criticality (dag.InferCriticality) and against no priorities at
// all, on the Figure 4a scenario. The paper defers dynamic criticality
// inference to related work; this quantifies what the runtime loses when
// the user provides no annotations.
func AblationInfer(cfg AblationConfig) *ThroughputGrid {
	if len(cfg.Parallelisms) == 0 {
		cfg.Parallelisms = []int{2, 4}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	grid := &ThroughputGrid{
		Title:    "Ablation: user-annotated vs inferred vs absent criticality (DAM-C, MatMul co-run)",
		XLabel:   "P",
		X:        cfg.Parallelisms,
		Policies: []string{"user", "inferred", "none"},
		Tput:     make([][]float64, 3),
	}
	wcfg := workloads.SyntheticConfig{Kernel: workloads.MatMul}.Defaults()
	wcfg.Tasks = cfg.Scale.Apply(wcfg.Tasks, 600)
	for row, variant := range []string{"user", "inferred", "none"} {
		grid.Tput[row] = make([]float64, len(cfg.Parallelisms))
		for j, par := range cfg.Parallelisms {
			topo, model := newModelTX2()
			interfere.CoRunCPU(model, []int{0}, 0.5)
			wcfg.Parallelism = par
			g := workloads.BuildSynthetic(wcfg)
			switch variant {
			case "inferred":
				g.ClearPriorities()
				g.InferCriticality(1.0, false)
			case "none":
				g.ClearPriorities()
			}
			rt, err := simrt.New(simCfg(topo, model, core.DAMC(), cfg.Seed, 0))
			if err != nil {
				panic(fmt.Sprintf("experiments: infer ablation: %v", err))
			}
			coll, err := rt.Run(g)
			if err != nil {
				panic(fmt.Sprintf("experiments: infer ablation %s P=%d: %v", variant, par, err))
			}
			grid.Tput[row][j] = coll.Throughput()
		}
	}
	return grid
}

// AblationWidth compares the full TX2 against a width-capped TX2 (all
// widths forced to 1) under DVFS at low parallelism, quantifying the
// moldability contribution in isolation.
func AblationWidth(cfg AblationConfig) *ThroughputGrid {
	pols := []core.Policy{core.DA(), core.DAMP()}
	grid := &ThroughputGrid{
		Title:    "Ablation: moldability disabled via width-1 platform (Stencil, DVFS)",
		XLabel:   "P",
		X:        []int{2, 3},
		Policies: []string{"DA/w1", "DAM-P/w1", "DA", "DAM-P"},
	}
	narrow := topology.MustNew([]topology.Cluster{
		func() topology.Cluster {
			c := topology.TX2().Cluster(0)
			c.Widths = []int{1}
			return c
		}(),
		func() topology.Cluster {
			c := topology.TX2().Cluster(1)
			c.Widths = []int{1}
			return c
		}(),
	})
	full := topology.TX2()
	for _, topoCase := range []*topology.Platform{narrow, full} {
		for _, pol := range pols {
			row := make([]float64, len(grid.X))
			for j, par := range grid.X {
				row[j] = runDVFSOnTopo(topoCase, cfg, pol, par)
			}
			grid.Tput = append(grid.Tput, row)
		}
	}
	return grid
}
