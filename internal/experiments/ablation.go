package experiments

import (
	"fmt"
	"io"

	"dynasym/internal/core"
	"dynasym/internal/scenario"
	"dynasym/internal/workloads"
)

// Ablations beyond the paper: they isolate the contribution of individual
// design decisions called out in DESIGN.md (wake-time routing, the
// no-steal rule for critical tasks, the PTT weight, and the dHEFT
// baseline). Each is a spec table over the scenario engine, usually a
// policy-set or platform variation of the Figure 4a/7 scenarios.

// stealablePolicy wraps a policy and re-enables stealing of high-priority
// tasks, ablating the paper's "disable stealing of high priority tasks"
// rule.
type stealablePolicy struct{ core.Policy }

func (p stealablePolicy) Name() string             { return p.Policy.Name() + "+steal" }
func (p stealablePolicy) AllowPrioritySteal() bool { return true }

// noWakePolicy wraps a policy and disables wake-time routing, leaving only
// the dispatch-time decision: newly ready critical tasks stay on the waking
// worker's queue.
type noWakePolicy struct{ core.Policy }

func (p noWakePolicy) Name() string { return p.Policy.Name() + "-wake" }
func (p noWakePolicy) WakePlace(*core.Context) (int, bool) {
	return 0, false
}

// AblationConfig selects the variant set and reuses the Figure 4a scenario
// (MatMul DAG, co-runner on Denver core 0).
type AblationConfig struct {
	Variant      string // "steal", "wake", "dheft", "alpha"
	Parallelisms []int
	Seed         uint64
	Scale        Scale
}

// Ablation runs the selected variant comparison.
func Ablation(cfg AblationConfig) (*ThroughputGrid, error) {
	if len(cfg.Parallelisms) == 0 {
		cfg.Parallelisms = []int{2, 4, 6}
	}
	var policies []core.Policy
	title := ""
	switch cfg.Variant {
	case "steal":
		policies = []core.Policy{core.DAMC(), stealablePolicy{core.DAMC()}, core.DAMP(), stealablePolicy{core.DAMP()}}
		title = "Ablation: stealing of high-priority tasks re-enabled"
	case "wake":
		policies = []core.Policy{core.DAMC(), noWakePolicy{core.DAMC()}, core.DA(), noWakePolicy{core.DA()}}
		title = "Ablation: wake-time routing disabled (dispatch-only placement)"
	case "dheft":
		policies = []core.Policy{core.RWS(), core.DHEFT(), core.DA(), core.DAMC()}
		title = "Ablation: dHEFT earliest-finish-time baseline"
	case "sampled":
		policies = []core.Policy{core.DAMC(), core.NewSampled(core.DAMC(), 4), core.NewSampled(core.DAMC(), 16)}
		title = "Ablation: sampled global search (the paper's scalability future work)"
	default:
		return nil, fmt.Errorf("experiments: unknown ablation variant %q (want steal|wake|dheft|alpha)", cfg.Variant)
	}
	grid := Fig4(Fig4Config{
		Kernel:       workloads.MatMul,
		Parallelisms: cfg.Parallelisms,
		Policies:     policies,
		Seed:         cfg.Seed,
		Scale:        cfg.Scale,
	})
	grid.Title = title
	return grid, nil
}

// AblationAlpha sweeps the PTT weight under DVFS (complementing Figure 8's
// co-run sweep): adaptation speed matters most when conditions flip every
// five seconds. The sweep is the Figure 7 scenario with one point per
// alpha.
func AblationAlpha(cfg AblationConfig) *AlphaResult {
	alphas := []float64{1.0 / 5, 2.0 / 5, 3.0 / 5, 4.0 / 5, 1.0}
	spec := Fig7Config{
		Kernel:   workloads.MatMul,
		Policies: []core.Policy{core.DAMC()},
		Seed:     cfg.Seed,
		Scale:    cfg.Scale,
	}.defaults().spec()
	spec.Name = "ablation-alpha"
	spec.Points = nil
	for _, alpha := range alphas {
		spec.Points = append(spec.Points, scenario.Point{
			Label:       fmt.Sprintf("w%g", alpha),
			Parallelism: 4,
			Alpha:       alpha,
		})
	}
	sres := scenario.MustRun(spec)
	res := &AlphaResult{Alphas: alphas}
	for xi := range spec.Points {
		res.Tput = append(res.Tput, sres.Cells[0][xi].Run().Throughput)
	}
	return res
}

// AlphaResult holds the DVFS alpha sweep.
type AlphaResult struct {
	Alphas []float64
	Tput   []float64
}

// Render prints the sweep.
func (r *AlphaResult) Render(w io.Writer) {
	fmt.Fprintln(w, "# Ablation: PTT new-sample weight under DVFS (DAM-C, MatMul, P=4)")
	for i, a := range r.Alphas {
		fmt.Fprintf(w, "alpha=%.1f  %10.0f tasks/s\n", a, r.Tput[i])
	}
}

// AblationInfer compares user-annotated criticality against CATS-style
// inferred criticality (dag.InferCriticality) and against no priorities at
// all, on the Figure 4a scenario. The paper defers dynamic criticality
// inference to related work; this quantifies what the runtime loses when
// the user provides no annotations.
func AblationInfer(cfg AblationConfig) *ThroughputGrid {
	if len(cfg.Parallelisms) == 0 {
		cfg.Parallelisms = []int{2, 4}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	grid := &ThroughputGrid{
		Title:    "Ablation: user-annotated vs inferred vs absent criticality (DAM-C, MatMul co-run)",
		XLabel:   "P",
		X:        cfg.Parallelisms,
		Policies: []string{"user", "inferred", "none"},
		Tput:     make([][]float64, 3),
	}
	variants := []string{scenario.CritUser, scenario.CritInferred, scenario.CritNone}
	base := Fig4Config{
		Kernel:       workloads.MatMul,
		Parallelisms: cfg.Parallelisms,
		Policies:     []core.Policy{core.DAMC()},
		Seed:         cfg.Seed,
		Scale:        cfg.Scale,
	}.defaults().spec()
	for row, variant := range variants {
		spec := base
		spec.Name = "ablation-infer-" + grid.Policies[row]
		spec.Workload.Criticality = variant
		grid.Tput[row] = scenario.MustRun(spec).Throughputs()[0]
	}
	return grid
}

// AblationWidth compares the full TX2 against a width-capped TX2 (all
// widths forced to 1) under DVFS at low parallelism, quantifying the
// moldability contribution in isolation.
func AblationWidth(cfg AblationConfig) *ThroughputGrid {
	pols := []core.Policy{core.DA(), core.DAMP()}
	grid := &ThroughputGrid{
		Title:    "Ablation: moldability disabled via width-1 platform (Stencil, DVFS)",
		XLabel:   "P",
		X:        []int{2, 3},
		Policies: []string{"DA/w1", "DAM-P/w1", "DA", "DAM-P"},
	}
	wcfg := workloads.SyntheticConfig{Kernel: workloads.Stencil}.Defaults()
	wcfg.Tasks = cfg.Scale.Apply(wcfg.Tasks, 600)
	for _, widthCap := range []int{1, 0} {
		sres := scenario.MustRun(scenario.Spec{
			Name:     fmt.Sprintf("ablation-width-cap%d", widthCap),
			Platform: scenario.PlatformSpec{Preset: "tx2", WidthCap: widthCap},
			Workload: scenario.WorkloadSpec{Kind: scenario.Synthetic, Synthetic: wcfg},
			Disturb:  []scenario.Disturbance{scenario.PaperDVFS(0)},
			Policies: pols,
			Points:   scenario.ParallelismPoints(grid.X...),
			Seed:     cfg.Seed + 7,
		})
		grid.Tput = append(grid.Tput, sres.Throughputs()...)
	}
	return grid
}
