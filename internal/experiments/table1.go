package experiments

import (
	"fmt"
	"io"

	"dynasym/internal/core"
)

// Table1Result reproduces the paper's Table 1: the feature summary of all
// evaluated schedulers.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one scheduler's feature row.
type Table1Row struct {
	Name      string
	Asymmetry string
	Mold      string
	Placement string
}

// Table1 builds the feature table from the implemented policies.
func Table1() *Table1Result {
	res := &Table1Result{}
	for _, p := range core.All() {
		f := core.FeaturesOf(p)
		res.Rows = append(res.Rows, Table1Row{
			Name:      p.Name(),
			Asymmetry: f.Asymmetry,
			Mold:      f.Mold,
			Placement: f.Placement,
		})
	}
	return res
}

// Render prints the table in the paper's layout.
func (r *Table1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "# Table 1: features summary of all evaluated schedulers")
	fmt.Fprintf(w, "%-8s  %-22s  %-12s  %s\n", "Name", "[A]symmetry awareness", "[M]oldability", "Priority placement")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s  %-22s  %-12s  %s\n", row.Name, row.Asymmetry, row.Mold, row.Placement)
	}
}
