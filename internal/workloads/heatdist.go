package workloads

import (
	"fmt"
	"math"

	"dynasym/internal/dag"
	"dynasym/internal/kernels"
	"dynasym/internal/machine"
	"dynasym/internal/simnet"
	"dynasym/internal/simrt"
	"dynasym/internal/topology"
)

// HeatDist is the paper's distributed 2D Heat stencil (Figure 10): each
// node owns a horizontal slab of the grid; every iteration each node
// updates its row blocks and runs one boundary-exchange task that swaps
// ghost cells with its neighbours ("MPI calls are encapsulated into
// specific TAOs ... There is one such exchange per iteration"). Following
// the paper, the exchange tasks are the high-priority (critical) tasks.
//
// The simulated variant runs one runtime per node over a shared
// discrete-event engine with a simnet network; the exchange tasks are
// executed by an ExecHook whose completion is the later of the local CPU
// (MPI stack) time and the arrival of all inbound boundaries — blocking
// MPI_Sendrecv semantics.
type HeatDist struct {
	// Nodes is the number of distributed-memory nodes (ranks).
	Nodes int
	// BlocksPerNode is the number of compute tasks per node per iteration.
	BlocksPerNode int
	// Iters is the number of Jacobi iterations.
	Iters int
	// RowsPerBlock and Cols size each block; they determine compute cost
	// and (with 8-byte cells) the boundary message size.
	RowsPerBlock, Cols int

	// ComputeCost and CommCost are derived in NewHeatDist but exported
	// for inspection and tests.
	ComputeCost machine.Cost
	CommCost    machine.Cost
}

// HeatComm tags an exchange task (via dag.Task.Data) with its endpoints.
type HeatComm struct {
	Node  int
	Peers []int
	Iter  int
}

// HeatDistConfig parameterizes NewHeatDist.
type HeatDistConfig struct {
	Nodes         int
	BlocksPerNode int
	Iters         int
	RowsPerBlock  int
	Cols          int
}

// Defaults fills unset fields with Figure 10 scale: four 20-core nodes,
// blocks sized so a width-1 execution is mildly DRAM-bound while a molded
// execution becomes LLC-resident (the cache-sharing effect the paper
// credits for the moldability gains on Heat), and boundary exchanges whose
// CPU share (MPI progress, packing, matching) is a substantial part of an
// iteration, so that where and when the critical tasks run moves the
// spine.
func (c HeatDistConfig) Defaults() HeatDistConfig {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.BlocksPerNode == 0 {
		c.BlocksPerNode = 80
	}
	if c.Iters == 0 {
		c.Iters = 60
	}
	if c.RowsPerBlock == 0 {
		c.RowsPerBlock = 16
	}
	if c.Cols == 0 {
		c.Cols = 32768
	}
	return c
}

// NewHeatDist builds the workload description.
func NewHeatDist(cfg HeatDistConfig) *HeatDist {
	cfg = cfg.Defaults()
	hd := &HeatDist{
		Nodes:         cfg.Nodes,
		BlocksPerNode: cfg.BlocksPerNode,
		Iters:         cfg.Iters,
		RowsPerBlock:  cfg.RowsPerBlock,
		Cols:          cfg.Cols,
	}
	pts := float64(cfg.RowsPerBlock * cfg.Cols)
	hd.ComputeCost = machine.Cost{
		Ops:          6 * pts / 1.0,
		Bytes:        2 * 8 * pts,
		WorkingSet:   2 * 8 * pts,
		SyncSeconds:  2e-6,
		WidthPenalty: 0.06,
	}
	boundary := float64(cfg.Cols) * 8
	hd.CommCost = machine.Cost{
		// The MPI stack (progress engine, matching, copies for both
		// directions) dominates an exchange's on-core cost.
		Ops:          boundary * 32,
		Bytes:        4 * boundary,
		SyncSeconds:  1e-6,
		WidthPenalty: 0.8, // message handling barely parallelizes
	}
	return hd
}

// BoundaryBytes returns the size of one exchanged boundary message.
func (hd *HeatDist) BoundaryBytes() float64 { return float64(hd.Cols) * 8 }

// peers returns the neighbour nodes of `node` in the 1-D decomposition.
func (hd *HeatDist) peers(node int) []int {
	var ps []int
	if node > 0 {
		ps = append(ps, node-1)
	}
	if node < hd.Nodes-1 {
		ps = append(ps, node+1)
	}
	return ps
}

// BuildNode constructs node `node`'s task graph. The per-iteration
// exchange task carries *HeatComm in Data and is marked high priority.
func (hd *HeatDist) BuildNode(node int) *dag.Graph {
	g := dag.New()
	B := hd.BlocksPerNode
	prev := make([]*dag.Task, B)
	var prevComm *dag.Task
	for iter := 0; iter < hd.Iters; iter++ {
		// One exchange task per iteration: it needs the previous
		// iteration's edge blocks (the rows it ships out).
		comm := &dag.Task{
			Label: fmt.Sprintf("n%d.exchange[%d]", node, iter),
			Type:  kernels.TypeComm,
			High:  true,
			Cost:  hd.CommCost,
			Iter:  iter,
			Data:  &HeatComm{Node: node, Peers: hd.peers(node), Iter: iter},
		}
		g.Add(comm, commDeps(prev[0], prev[B-1], prevComm)...)
		prevComm = comm

		cur := make([]*dag.Task, B)
		for b := 0; b < B; b++ {
			t := &dag.Task{
				Label: fmt.Sprintf("n%d.heat[%d.%d]", node, iter, b),
				Type:  HeatTypeCompute,
				Cost:  hd.ComputeCost,
				Iter:  iter,
			}
			var deps []*dag.Task
			if iter > 0 {
				deps = append(deps, prev[b])
				if b > 0 {
					deps = append(deps, prev[b-1])
				}
				if b < B-1 {
					deps = append(deps, prev[b+1])
				}
			}
			// Edge blocks consume the ghost cells from this iteration's
			// exchange.
			if b == 0 || b == B-1 {
				deps = append(deps, comm)
			}
			g.Add(t, deps...)
			cur[b] = t
		}
		prev = cur
	}
	return g
}

// commDeps drops nil and duplicate dependencies (first iteration has none;
// with one block the two edge blocks coincide).
func commDeps(deps ...*dag.Task) []*dag.Task {
	var out []*dag.Task
	for _, d := range deps {
		if d == nil {
			continue
		}
		dup := false
		for _, o := range out {
			if o == d {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, d)
		}
	}
	return out
}

// Hook returns the simulated-execution hook for one node's runtime: it
// intercepts exchange tasks, fires the boundary sends immediately, and
// completes the task when both the local CPU work and all inbound
// boundaries are done.
func (hd *HeatDist) Hook(net *simnet.Network) simrt.ExecHook {
	return func(rt *simrt.Runtime, t *dag.Task, pl topology.Place, start float64, deliver func(finish float64)) bool {
		hc, ok := t.Data.(*HeatComm)
		if !ok {
			return false
		}
		// The local CPU portion (MPI stack for both directions).
		cpuFinish := rt.ModelDuration(t.Cost, pl, start)
		if len(hc.Peers) == 0 {
			deliver(cpuFinish)
			return true
		}
		// Outbound boundaries leave now; completion needs every inbound
		// boundary plus the CPU work. Recv may complete synchronously
		// when the peer's boundary already arrived, so the countdown is
		// primed before the loop and deliver fires exactly once, on the
		// last arrival.
		pending := len(hc.Peers)
		latest := cpuFinish
		for _, peer := range hc.Peers {
			net.Send(simnet.MsgKey{From: hc.Node, To: peer, Tag: int64(hc.Iter)}, hd.BoundaryBytes())
			net.Recv(simnet.MsgKey{From: peer, To: hc.Node, Tag: int64(hc.Iter)}, func(at float64) {
				latest = math.Max(latest, at)
				pending--
				if pending == 0 {
					deliver(latest)
				}
			})
		}
		return true
	}
}
