package workloads

import (
	"math"
	"testing"

	"dynasym/internal/dag"
	"dynasym/internal/kernels"
)

func TestSyntheticStructure(t *testing.T) {
	g := BuildSynthetic(SyntheticConfig{Kernel: MatMul, Tile: 64, Tasks: 120, Parallelism: 4})
	if g.Total() != 120 {
		t.Fatalf("total = %d, want 120", g.Total())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if par := g.Parallelism(); par != 4 {
		t.Fatalf("DAG parallelism = %g, want 4 (the paper's definition)", par)
	}
	// Exactly one critical task per layer.
	high := 0
	for _, tsk := range g.Tasks() {
		if tsk.High {
			high++
		}
	}
	if high != 30 {
		t.Fatalf("%d critical tasks, want 30 (one per layer)", high)
	}
}

func TestSyntheticDefaults(t *testing.T) {
	cfg := SyntheticConfig{Kernel: Copy}.Defaults()
	if cfg.Tile != 1024 || cfg.Tasks != 10000 {
		t.Fatalf("copy defaults = %+v", cfg)
	}
	cfg = (SyntheticConfig{Kernel: MatMul}).Defaults()
	if cfg.Tile != 64 || cfg.Tasks != 32000 {
		t.Fatalf("matmul defaults = %+v", cfg)
	}
	if (SyntheticConfig{Kernel: Stencil}).Defaults().Tasks != 20000 {
		t.Fatal("stencil default task count wrong")
	}
}

func TestSyntheticCriticalReleasesNextLayer(t *testing.T) {
	g := BuildSynthetic(SyntheticConfig{Kernel: Copy, Tasks: 8, Parallelism: 2})
	ready := g.Start()
	if len(ready) != 2 {
		t.Fatalf("layer 0 has %d ready tasks, want 2", len(ready))
	}
	var crit, low *dag.Task
	for _, tsk := range ready {
		if tsk.High {
			crit = tsk
		} else {
			low = tsk
		}
	}
	// Completing the low task releases nothing.
	low.MarkRunning()
	if next, _ := g.Complete(low); len(next) != 0 {
		t.Fatal("low task released the next layer")
	}
	// Completing the critical task releases the whole next layer.
	crit.MarkRunning()
	next, _ := g.Complete(crit)
	if len(next) != 2 {
		t.Fatalf("critical task released %d tasks, want 2", len(next))
	}
}

func TestBuildChain(t *testing.T) {
	g := BuildChain(ChainConfig{Kernel: MatMul, Length: 50})
	if g.Total() != 50 {
		t.Fatalf("chain length = %d", g.Total())
	}
	if par := g.Parallelism(); par != 1 {
		t.Fatalf("chain parallelism = %g, want 1", par)
	}
}

func TestKernelKindString(t *testing.T) {
	if MatMul.String() != "MatMul" || Copy.String() != "Copy" || Stencil.String() != "Stencil" {
		t.Fatal("kernel names wrong")
	}
	if MatMul.TypeID() != kernels.TypeMatMul {
		t.Fatal("type ids wrong")
	}
}

func TestKMeansGrainPartition(t *testing.T) {
	km := NewKMeans(KMeansConfig{N: 10000, Grains: 16})
	covered := 0
	largest := 0
	for g := 0; g < km.Grains; g++ {
		lo, hi := kmGrainRange(km, g)
		if hi < lo {
			t.Fatalf("grain %d inverted: [%d,%d)", g, lo, hi)
		}
		covered += hi - lo
		if hi-lo > largest {
			largest = hi - lo
		}
	}
	if covered != km.N {
		t.Fatalf("grains cover %d points, want %d", covered, km.N)
	}
	// The jumbo grain is the largest.
	lo, hi := kmGrainRange(km, km.Grains-1)
	if hi-lo != largest {
		t.Fatal("last grain is not the largest work unit")
	}
	if float64(hi-lo) < 0.9*km.JumboFrac*float64(km.N) {
		t.Fatalf("jumbo grain %d points, want ≈ %g", hi-lo, km.JumboFrac*float64(km.N))
	}
}

// kmGrainRange exposes the internal grain bounds through the public graph
// structure: it rebuilds the same arithmetic used by assignBody.
func kmGrainRange(km *KMeans, g int) (int, int) {
	return km.grainRange(g)
}

func TestKMeansGraphShape(t *testing.T) {
	km := NewKMeans(KMeansConfig{N: 1 << 10, Grains: 8, MaxIters: 3})
	g := km.Build()
	// Only the first iteration is static: 8 assigns + 1 reduce.
	if g.Total() != 9 {
		t.Fatalf("initial graph has %d tasks, want 9", g.Total())
	}
	high := 0
	for _, tsk := range g.Tasks() {
		if tsk.High {
			high++
		}
	}
	if high != 1 {
		t.Fatalf("%d high tasks, want 1 (the largest work unit)", high)
	}
}

func TestKMeansConvergesOnBlobs(t *testing.T) {
	km := NewKMeans(KMeansConfig{N: 2000, D: 4, K: 4, Grains: 8, MaxIters: 50, Epsilon: 1e-6, Seed: 5, BlobStd: 0.02})
	g := km.Build()
	// Run serially through the graph, executing bodies.
	ready := g.Start()
	for len(ready) > 0 {
		tsk := ready[0]
		ready = ready[1:]
		tsk.MarkRunning()
		if tsk.Body != nil {
			tsk.Body(dag.Exec{Part: 0, Width: 1})
		}
		next, _ := g.Complete(tsk)
		ready = append(ready, next...)
	}
	if km.Iters >= 50 {
		t.Fatalf("k-means did not converge in %d iterations", km.Iters)
	}
	// With tight blobs and K == blob count, inertia per point is small.
	if in := km.Inertia() / float64(km.N); in > 0.01 {
		t.Fatalf("inertia per point %g too high — clustering failed", in)
	}
}

func TestHeatParallelMatchesReferenceSerially(t *testing.T) {
	h := NewHeat(HeatConfig{Rows: 32, Cols: 32, Blocks: 4, Iters: 7, Seed: 9})
	g := h.Build()
	ready := g.Start()
	for len(ready) > 0 {
		tsk := ready[0]
		ready = ready[1:]
		tsk.MarkRunning()
		tsk.Body(dag.Exec{Part: 0, Width: 1})
		next, _ := g.Complete(tsk)
		ready = append(ready, next...)
	}
	got, want := h.Result(), h.Reference()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("heat diverges at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestHeatGraphShape(t *testing.T) {
	h := NewHeat(HeatConfig{Rows: 64, Cols: 64, Blocks: 8, Iters: 10})
	g := h.Build()
	if g.Total() != 80 {
		t.Fatalf("heat graph has %d tasks", g.Total())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Block dependencies bound parallelism by the block count.
	if par := g.Parallelism(); par > 8+1e-9 {
		t.Fatalf("heat parallelism %g exceeds block count", par)
	}
}

func TestHeatDistGraphShape(t *testing.T) {
	hd := NewHeatDist(HeatDistConfig{Nodes: 3, BlocksPerNode: 4, Iters: 5, RowsPerBlock: 8, Cols: 64})
	for node := 0; node < 3; node++ {
		g := hd.BuildNode(node)
		// 5 iterations × (4 blocks + 1 exchange).
		if g.Total() != 25 {
			t.Fatalf("node %d graph has %d tasks, want 25", node, g.Total())
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		high := 0
		for _, tsk := range g.Tasks() {
			if tsk.High {
				high++
				if tsk.Type != kernels.TypeComm {
					t.Fatal("high task is not a comm task")
				}
				hc := tsk.Data.(*HeatComm)
				if hc.Node != node {
					t.Fatalf("comm task node = %d, want %d", hc.Node, node)
				}
				for _, p := range hc.Peers {
					if p != node-1 && p != node+1 {
						t.Fatalf("bad peer %d for node %d", p, node)
					}
				}
			}
		}
		if high != 5 {
			t.Fatalf("node %d has %d high tasks, want 5", node, high)
		}
	}
}

func TestHeatDistCostShapes(t *testing.T) {
	hd := NewHeatDist(HeatDistConfig{})
	if hd.ComputeCost.Ops <= 0 || hd.CommCost.Ops <= 0 {
		t.Fatal("costs not derived")
	}
	if hd.BoundaryBytes() != float64(hd.Cols)*8 {
		t.Fatal("boundary size wrong")
	}
}
