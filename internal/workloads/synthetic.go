// Package workloads builds the paper's benchmark applications as task
// graphs: the synthetic layered DAGs (Section 4.2.2), K-means clustering as
// a dynamic DAG, and 2D Heat in shared-memory and distributed variants.
package workloads

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"dynasym/internal/dag"
	"dynasym/internal/kernels"
	"dynasym/internal/machine"
	"dynasym/internal/ptt"
	"dynasym/internal/xrand"
)

// KernelKind selects the node type of a synthetic DAG.
type KernelKind int

// The three kernel classes of the paper's synthetic DAGs.
const (
	MatMul  KernelKind = iota // compute-intensive
	Copy                      // memory-intensive
	Stencil                   // cache-intensive
)

// String returns the paper's kernel name.
func (k KernelKind) String() string {
	switch k {
	case MatMul:
		return "MatMul"
	case Copy:
		return "Copy"
	case Stencil:
		return "Stencil"
	default:
		return fmt.Sprintf("KernelKind(%d)", int(k))
	}
}

// TypeID returns the PTT task type for the kernel.
func (k KernelKind) TypeID() ptt.TypeID {
	switch k {
	case MatMul:
		return kernels.TypeMatMul
	case Copy:
		return kernels.TypeCopy
	case Stencil:
		return kernels.TypeStencil
	default:
		return kernels.TypeUser
	}
}

// SyntheticConfig describes one synthetic layered DAG, following the paper:
// every layer holds Parallelism tasks of the same type; one task per layer
// is critical and releases the next layer when it completes.
type SyntheticConfig struct {
	// Kernel selects the node type.
	Kernel KernelKind
	// Tile is the square tile edge per task (paper defaults: 64 for
	// MatMul, 1024 for Copy and Stencil).
	Tile int
	// Sweeps is the number of stencil sweeps per task (ignored
	// otherwise). Defaults to 1, matching the per-task times the paper's
	// stencil throughputs imply.
	Sweeps int
	// Tasks is the total number of tasks (paper defaults: 32000 MatMul,
	// 10000 Copy, 20000 Stencil). Rounded down to a whole number of
	// layers.
	Tasks int
	// Parallelism is the DAG parallelism P (tasks per layer).
	Parallelism int
	// MakeBodies attaches real compute bodies for the real runtime.
	// Kernel instances are pooled and reused between tasks, so memory
	// stays bounded regardless of Tasks.
	MakeBodies bool
	// Seed drives operand initialization when MakeBodies is set.
	Seed uint64
}

// Defaults fills unset fields with the paper's values for the kernel.
func (c SyntheticConfig) Defaults() SyntheticConfig {
	if c.Tile == 0 {
		if c.Kernel == MatMul {
			c.Tile = 64
		} else {
			c.Tile = 1024
		}
	}
	if c.Sweeps == 0 {
		c.Sweeps = 1
	}
	if c.Tasks == 0 {
		switch c.Kernel {
		case MatMul:
			c.Tasks = 32000
		case Copy:
			c.Tasks = 10000
		default:
			c.Tasks = 20000
		}
	}
	if c.Parallelism == 0 {
		c.Parallelism = 4
	}
	return c
}

// Cost returns the machine-model cost of one task of this configuration.
func (c SyntheticConfig) Cost() machine.Cost {
	switch c.Kernel {
	case MatMul:
		return kernels.MatMulCost(c.Tile)
	case Copy:
		return kernels.CopyCost(c.Tile)
	default:
		return kernels.StencilCost(c.Tile, c.Sweeps)
	}
}

// kernelPool hands out exclusive kernel instances so concurrent real-mode
// tasks never share writable buffers while total allocation stays bounded
// by the peak concurrency rather than the task count.
type kernelPool struct {
	pool sync.Pool
}

func newKernelPool(cfg SyntheticConfig, seed uint64) *kernelPool {
	var mu sync.Mutex
	rng := xrand.New(seed)
	kp := &kernelPool{}
	kp.pool.New = func() any {
		mu.Lock()
		r := rng.Split()
		mu.Unlock()
		switch cfg.Kernel {
		case MatMul:
			return kernels.NewMatMul(cfg.Tile, r)
		case Copy:
			return kernels.NewCopy(cfg.Tile, r)
		default:
			return kernels.NewStencil(cfg.Tile, cfg.Sweeps, r)
		}
	}
	return kp
}

// taskBody builds the real body for one task. All members of a moldable
// place must operate on one shared kernel instance; whichever member
// arrives first draws it from the pool, and the last member to finish
// returns it.
func (kp *kernelPool) taskBody() func(dag.Exec) {
	var (
		once sync.Once
		inst any
		done atomic.Int32
	)
	return func(e dag.Exec) {
		once.Do(func() { inst = kp.pool.Get() })
		runKernel(inst, e)
		if done.Add(1) == int32(e.Width) {
			kp.pool.Put(inst)
			// Reset for the (impossible) case of body reuse: bodies are
			// per-task, so this is only defensive.
			done.Store(0)
		}
	}
}

func runKernel(inst any, e dag.Exec) {
	switch k := inst.(type) {
	case *kernels.MatMul:
		k.Body(e)
	case *kernels.Copy:
		k.Body(e)
	case *kernels.Stencil:
		k.Body(e)
	default:
		panic("workloads: unknown kernel instance")
	}
}

// BuildSynthetic constructs the layered synthetic DAG. Layer i's critical
// task releases all of layer i+1, so DAG parallelism (total tasks / longest
// path) equals cfg.Parallelism exactly.
func BuildSynthetic(cfg SyntheticConfig) *dag.Graph {
	cfg = cfg.Defaults()
	g := dag.New()
	layers := cfg.Tasks / cfg.Parallelism
	if layers == 0 {
		layers = 1
	}
	g.Grow(layers * cfg.Parallelism)
	cost := cfg.Cost()
	typeID := cfg.Kernel.TypeID()
	kernelName := cfg.Kernel.String()
	var kp *kernelPool
	if cfg.MakeBodies {
		kp = newKernelPool(cfg, cfg.Seed)
	}
	var prevCritical *dag.Task
	layerTasks := make([]*dag.Task, cfg.Parallelism)
	for layer := 0; layer < layers; layer++ {
		for i := 0; i < cfg.Parallelism; i++ {
			t := &dag.Task{
				Label: layerLabel(kernelName, layer, i),
				Type:  typeID,
				High:  i == 0,
				Cost:  cost,
				Iter:  layer,
			}
			if kp != nil {
				t.Body = kp.taskBody()
			}
			layerTasks[i] = t
		}
		g.AddLayer(layerTasks, prevCritical)
		prevCritical = layerTasks[0]
	}
	return g
}

// ChainConfig describes the paper's interfering co-runner: a single serial
// chain of kernel tasks pinned (by the interference scenario) to one core.
type ChainConfig struct {
	Kernel KernelKind
	Tile   int
	Length int
}

// BuildChain constructs a serial task chain (DAG parallelism 1).
func BuildChain(cfg ChainConfig) *dag.Graph {
	if cfg.Tile == 0 {
		cfg.Tile = 64
	}
	if cfg.Length == 0 {
		cfg.Length = 1000
	}
	g := dag.New()
	g.Grow(cfg.Length)
	cost := SyntheticConfig{Kernel: cfg.Kernel, Tile: cfg.Tile}.Defaults().Cost()
	var prev *dag.Task
	for i := 0; i < cfg.Length; i++ {
		t := &dag.Task{
			Label: chainLabel(i),
			Type:  cfg.Kernel.TypeID(),
			Cost:  cost,
		}
		if prev != nil {
			g.Add(t, prev)
		} else {
			g.Add(t)
		}
		prev = t
	}
	return g
}

// layerLabel renders "kernel[Llayer.i]" without fmt: label construction is
// a measurable slice of large-graph build time in scenario sweeps, and one
// stack-scratch strconv append per label beats Sprintf by an order of
// magnitude in both time and allocations.
func layerLabel(kernel string, layer, i int) string {
	var scratch [40]byte
	b := scratch[:0]
	b = append(b, kernel...)
	b = append(b, '[', 'L')
	b = strconv.AppendInt(b, int64(layer), 10)
	b = append(b, '.')
	b = strconv.AppendInt(b, int64(i), 10)
	b = append(b, ']')
	return string(b)
}

// chainLabel renders "chain[i]" without fmt.
func chainLabel(i int) string {
	var scratch [28]byte
	b := scratch[:0]
	b = append(b, "chain["...)
	b = strconv.AppendInt(b, int64(i), 10)
	b = append(b, ']')
	return string(b)
}
