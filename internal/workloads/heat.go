package workloads

import (
	"fmt"

	"dynasym/internal/dag"
	"dynasym/internal/kernels"
	"dynasym/internal/machine"
	"dynasym/internal/ptt"
	"dynasym/internal/xrand"
)

// Heat is the shared-memory 2D heat diffusion (Jacobi) application: an
// iterative 5-point stencil over a Rows×Cols grid decomposed into row
// blocks. Block b of iteration i depends on blocks b−1, b, b+1 of
// iteration i−1. Used by the examples and as the single-node counterpart
// of the paper's distributed Heat.
type Heat struct {
	Rows, Cols int
	Blocks     int
	Iters      int
	// grids are double-buffered; bodies write next from cur.
	cur, next []float64
	// initial preserves the starting state for Reference.
	initial []float64

	blockCost machine.Cost
}

// HeatTypeCompute is the PTT task type of heat block updates.
const HeatTypeCompute ptt.TypeID = kernels.TypeUser + 8

// HeatConfig parameterizes NewHeat.
type HeatConfig struct {
	Rows, Cols int
	Blocks     int
	Iters      int
	Seed       uint64
}

// Defaults fills unset fields with example-scale values.
func (c HeatConfig) Defaults() HeatConfig {
	if c.Rows == 0 {
		c.Rows = 512
	}
	if c.Cols == 0 {
		c.Cols = 512
	}
	if c.Blocks == 0 {
		c.Blocks = 8
	}
	if c.Iters == 0 {
		c.Iters = 50
	}
	return c
}

// NewHeat allocates the grids with a deterministic hot-spot initial state.
func NewHeat(cfg HeatConfig) *Heat {
	cfg = cfg.Defaults()
	h := &Heat{
		Rows: cfg.Rows, Cols: cfg.Cols,
		Blocks: cfg.Blocks, Iters: cfg.Iters,
		cur:  make([]float64, cfg.Rows*cfg.Cols),
		next: make([]float64, cfg.Rows*cfg.Cols),
	}
	rng := xrand.New(cfg.Seed)
	// A few hot spots plus hot top boundary.
	for c := 0; c < cfg.Cols; c++ {
		h.cur[c] = 100
		h.next[c] = 100
	}
	for i := 0; i < 8; i++ {
		r := 1 + rng.Intn(cfg.Rows-2)
		c := rng.Intn(cfg.Cols)
		h.cur[r*cfg.Cols+c] = 80
		h.next[r*cfg.Cols+c] = 80
	}
	h.initial = append([]float64(nil), h.cur...)
	pts := float64(cfg.Rows*cfg.Cols) / float64(cfg.Blocks)
	h.blockCost = machine.Cost{
		Ops:          6 * pts / 0.5,
		Bytes:        2 * 8 * pts,
		WorkingSet:   2 * 8 * pts,
		SyncSeconds:  2e-6,
		WidthPenalty: 0.08,
	}
	return h
}

// blockRows returns block b's half-open interior row interval.
func (h *Heat) blockRows(b int) (lo, hi int) {
	interior := h.Rows - 2
	lo = 1 + b*interior/h.Blocks
	hi = 1 + (b+1)*interior/h.Blocks
	return lo, hi
}

// blockBody updates one block of one iteration; grids alternate by
// iteration parity, so tasks of the same iteration never conflict.
func (h *Heat) blockBody(iter, b int) func(dag.Exec) {
	return func(e dag.Exec) {
		src, dst := h.cur, h.next
		if iter%2 == 1 {
			src, dst = dst, src
		}
		lo, hi := h.blockRows(b)
		span := hi - lo
		mlo := lo + e.Part*span/e.Width
		mhi := lo + (e.Part+1)*span/e.Width
		n := h.Cols
		for r := mlo; r < mhi; r++ {
			row := r * n
			for c := 1; c < n-1; c++ {
				dst[row+c] = 0.2 * (src[row+c] + src[row+c-1] + src[row+c+1] + src[row-n+c] + src[row+n+c])
			}
			dst[row] = src[row]
			dst[row+n-1] = src[row+n-1]
		}
	}
}

// Build constructs the full static DAG (Iters × Blocks tasks).
func (h *Heat) Build() *dag.Graph {
	g := dag.New()
	prev := make([]*dag.Task, h.Blocks)
	for iter := 0; iter < h.Iters; iter++ {
		cur := make([]*dag.Task, h.Blocks)
		for b := 0; b < h.Blocks; b++ {
			t := &dag.Task{
				Label: fmt.Sprintf("heat[%d.%d]", iter, b),
				Type:  HeatTypeCompute,
				Cost:  h.blockCost,
				Body:  h.blockBody(iter, b),
				Iter:  iter,
			}
			if iter == 0 {
				g.Add(t)
			} else {
				deps := []*dag.Task{prev[b]}
				if b > 0 {
					deps = append(deps, prev[b-1])
				}
				if b < h.Blocks-1 {
					deps = append(deps, prev[b+1])
				}
				g.Add(t, deps...)
			}
			cur[b] = t
		}
		prev = cur
	}
	return g
}

// Result returns the grid after the final iteration.
func (h *Heat) Result() []float64 {
	if h.Iters%2 == 1 {
		return h.next
	}
	return h.cur
}

// Reference computes the same diffusion serially from the initial state,
// for correctness tests. It may be called before or after the parallel run.
func (h *Heat) Reference() []float64 {
	cur := append([]float64(nil), h.initial...)
	next := append([]float64(nil), h.initial...)
	n := h.Cols
	for iter := 0; iter < h.Iters; iter++ {
		for r := 1; r < h.Rows-1; r++ {
			row := r * n
			for c := 1; c < n-1; c++ {
				next[row+c] = 0.2 * (cur[row+c] + cur[row+c-1] + cur[row+c+1] + cur[row-n+c] + cur[row+n+c])
			}
			next[row] = cur[row]
			next[row+n-1] = cur[row+n-1]
		}
		cur, next = next, cur
	}
	return cur
}
