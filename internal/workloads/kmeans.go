package workloads

import (
	"fmt"
	"math"
	"sync"

	"dynasym/internal/dag"
	"dynasym/internal/kernels"
	"dynasym/internal/machine"
	"dynasym/internal/ptt"
	"dynasym/internal/xrand"
)

// KMeans implements the paper's K-means clustering application (from the
// Rodinia suite) as a dynamic DAG: each iteration spawns one "assign" task
// per point partition (loop-parallel tasks with tunable grain) and one
// "reduce" task that recomputes the centroids and, unless converged or at
// the iteration limit, inserts the next iteration's tasks. Following the
// paper, the task containing the largest work unit is marked high priority.
//
// The same object drives both runtimes: the simulator uses the cost
// descriptors, the real runtime the Body closures, and the arithmetic is
// executed either way when bodies run.
type KMeans struct {
	// Points is the row-major N×D data.
	Points []float64
	N, D   int
	// K is the number of clusters.
	K int
	// Grains is the number of point partitions per iteration.
	Grains int
	// JumboFrac is the fraction of points assigned to the last, largest
	// grain — the paper marks "the task containing the largest work
	// unit" as high priority, so this grain is the critical task. The
	// default (1/16) sizes it to about one core's share of an iteration.
	JumboFrac float64
	// CostScale multiplies the simulated per-point cost, standing in for
	// the per-record work of the Rodinia inputs (wider records, cache
	// misses) without allocating them; it does not affect real bodies.
	CostScale float64
	// MaxIters bounds the number of iterations.
	MaxIters int
	// Epsilon stops iterating when total centroid movement falls below
	// it; 0 disables convergence stopping (fixed iteration count, like
	// the paper's 100-iteration runs).
	Epsilon float64

	// Centroids is the current K×D centroid matrix.
	Centroids []float64
	// Assign is the current cluster index per point.
	Assign []int
	// Iters is the number of completed iterations.
	Iters int
	// Moved is the centroid movement of the last completed iteration.
	Moved float64

	assignCost machine.Cost // per average (non-jumbo) grain
	reduceCost machine.Cost
	bounds     []int // grain boundaries, len Grains+1

	mu        sync.Mutex
	sums      []float64
	counts    []int64
	converged bool
}

// KMeansTypeAssign, KMeansTypeAssignJumbo and KMeansTypeReduce are the PTT
// task types used by the K-means DAG. The jumbo (largest) partition gets
// its own trace table: its execution times are several times those of the
// regular partitions, and the paper instantiates one table per task type
// precisely because "the performance varies per type".
const (
	KMeansTypeAssign ptt.TypeID = kernels.TypeUser + iota
	KMeansTypeAssignJumbo
	KMeansTypeReduce
)

// KMeansConfig parameterizes NewKMeans.
type KMeansConfig struct {
	N, D, K   int
	Grains    int
	JumboFrac float64
	CostScale float64
	MaxIters  int
	Epsilon   float64
	Seed      uint64
	// BlobStd controls synthetic data generation: points are drawn from
	// K Gaussian blobs so the clustering has structure to find.
	BlobStd float64
}

// Defaults fills unset fields with paper-scale values (Figure 9 uses a
// 16-core Haswell node, 100 iterations).
func (c KMeansConfig) Defaults() KMeansConfig {
	if c.N == 0 {
		c.N = 1 << 16
	}
	if c.D == 0 {
		c.D = 16
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.Grains == 0 {
		c.Grains = 64
	}
	if c.JumboFrac == 0 {
		c.JumboFrac = 1.0 / 16
	}
	if c.CostScale == 0 {
		c.CostScale = 20
	}
	if c.MaxIters == 0 {
		c.MaxIters = 100
	}
	if c.BlobStd == 0 {
		c.BlobStd = 0.08
	}
	return c
}

// NewKMeans generates blob data and initial centroids deterministically
// from the seed and returns the application object.
func NewKMeans(cfg KMeansConfig) *KMeans {
	cfg = cfg.Defaults()
	rng := xrand.New(cfg.Seed)
	km := &KMeans{
		Points:    make([]float64, cfg.N*cfg.D),
		N:         cfg.N,
		D:         cfg.D,
		K:         cfg.K,
		Grains:    cfg.Grains,
		JumboFrac: cfg.JumboFrac,
		CostScale: cfg.CostScale,
		MaxIters:  cfg.MaxIters,
		Epsilon:   cfg.Epsilon,
		Centroids: make([]float64, cfg.K*cfg.D),
		Assign:    make([]int, cfg.N),
		sums:      make([]float64, cfg.K*cfg.D),
		counts:    make([]int64, cfg.K),
	}
	// Grain boundaries: the last grain is the jumbo (critical) work unit.
	jumbo := int(float64(cfg.N) * cfg.JumboFrac)
	if jumbo < cfg.N/cfg.Grains {
		jumbo = cfg.N / cfg.Grains
	}
	rest := cfg.N - jumbo
	km.bounds = make([]int, cfg.Grains+1)
	if cfg.Grains > 1 {
		for g := 0; g < cfg.Grains; g++ {
			km.bounds[g] = g * rest / (cfg.Grains - 1)
		}
	}
	km.bounds[cfg.Grains-1] = rest
	km.bounds[cfg.Grains] = cfg.N
	// Blob centers on the unit hypercube corners-ish.
	centers := make([]float64, cfg.K*cfg.D)
	for i := range centers {
		centers[i] = rng.Float64()
	}
	for p := 0; p < cfg.N; p++ {
		blob := p % cfg.K
		for d := 0; d < cfg.D; d++ {
			km.Points[p*cfg.D+d] = centers[blob*cfg.D+d] + cfg.BlobStd*rng.NormFloat64()
		}
	}
	// Initialize centroids from the first K points (deterministic).
	copy(km.Centroids, km.Points[:cfg.K*cfg.D])

	// Cost model: assigning one point is K×D multiply-adds, scaled by
	// CostScale to stand in for the Rodinia inputs' heavier records. The
	// reference cost below is per point; addIteration scales it by each
	// grain's size.
	flopsPerPoint := float64(cfg.K) * float64(cfg.D) * 3 * cfg.CostScale
	km.assignCost = machine.Cost{
		Ops:          flopsPerPoint / 0.5, // scalar distance loop, ~0.5 flops/cycle
		Bytes:        float64(cfg.D) * 8 * cfg.CostScale,
		SharedBytes:  float64(cfg.K*cfg.D) * 8,
		WorkingSet:   float64(cfg.K*cfg.D) * 8,
		SyncSeconds:  2e-6,
		WidthPenalty: 0.10,
	}
	km.reduceCost = machine.Cost{
		Ops:          float64(cfg.K*cfg.D) * 200,
		Bytes:        float64(cfg.K*cfg.D) * 8,
		SyncSeconds:  1e-6,
		WidthPenalty: 0.5,
	}
	return km
}

// grainRange returns the half-open point interval of grain g. The last
// grain is the jumbo (largest) work unit, sized by JumboFrac.
func (km *KMeans) grainRange(g int) (lo, hi int) {
	return km.bounds[g], km.bounds[g+1]
}

// assignBody computes, for the points of one grain, the nearest centroid
// and accumulates partial sums. Members of a moldable place split the grain
// by Exec.Part.
func (km *KMeans) assignBody(g int) func(dag.Exec) {
	return func(e dag.Exec) {
		lo, hi := km.grainRange(g)
		span := hi - lo
		mlo := lo + e.Part*span/e.Width
		mhi := lo + (e.Part+1)*span/e.Width
		D, K := km.D, km.K
		localSums := make([]float64, K*D)
		localCounts := make([]int64, K)
		for p := mlo; p < mhi; p++ {
			pt := km.Points[p*D : (p+1)*D]
			best, bestDist := 0, math.Inf(1)
			for k := 0; k < K; k++ {
				c := km.Centroids[k*D : (k+1)*D]
				dist := 0.0
				for d := 0; d < D; d++ {
					diff := pt[d] - c[d]
					dist += diff * diff
				}
				if dist < bestDist {
					best, bestDist = k, dist
				}
			}
			km.Assign[p] = best
			for d := 0; d < D; d++ {
				localSums[best*D+d] += pt[d]
			}
			localCounts[best]++
		}
		km.mu.Lock()
		for i, v := range localSums {
			km.sums[i] += v
		}
		for i, v := range localCounts {
			km.counts[i] += v
		}
		km.mu.Unlock()
	}
}

// reduceBody recomputes the centroids from the accumulated sums and records
// the movement.
func (km *KMeans) reduceBody() func(dag.Exec) {
	return func(e dag.Exec) {
		if e.Part != 0 {
			return // reduce is sequential; extra members idle
		}
		km.mu.Lock()
		defer km.mu.Unlock()
		moved := 0.0
		D := km.D
		for k := 0; k < km.K; k++ {
			if km.counts[k] == 0 {
				continue
			}
			inv := 1.0 / float64(km.counts[k])
			for d := 0; d < D; d++ {
				next := km.sums[k*D+d] * inv
				diff := next - km.Centroids[k*D+d]
				moved += diff * diff
				km.Centroids[k*D+d] = next
			}
		}
		km.Moved = math.Sqrt(moved)
		for i := range km.sums {
			km.sums[i] = 0
		}
		for i := range km.counts {
			km.counts[i] = 0
		}
		km.Iters++
		if km.Epsilon > 0 && km.Moved < km.Epsilon {
			km.converged = true
		}
	}
}

// Build returns the dynamic DAG: the first iteration's tasks are inserted
// statically, and each reduce task's completion hook inserts the next
// iteration until MaxIters (or convergence when Epsilon > 0).
func (km *KMeans) Build() *dag.Graph {
	g := dag.New()
	km.addIteration(g, 0)
	return g
}

// addIteration inserts one iteration's assign tasks and reduce task.
func (km *KMeans) addIteration(g *dag.Graph, iter int) {
	assigns := make([]*dag.Task, km.Grains)
	for i := 0; i < km.Grains; i++ {
		lo, hi := km.grainRange(i)
		pts := float64(hi - lo)
		cost := km.assignCost
		cost.Ops *= pts
		cost.Bytes *= pts
		typ := KMeansTypeAssign
		if i == km.Grains-1 {
			typ = KMeansTypeAssignJumbo
		}
		assigns[i] = g.Add(&dag.Task{
			Label: fmt.Sprintf("assign[%d.%d]", iter, i),
			Type:  typ,
			High:  i == km.Grains-1,
			Cost:  cost,
			Body:  km.assignBody(i),
			Iter:  iter,
		})
	}
	reduce := &dag.Task{
		Label: fmt.Sprintf("reduce[%d]", iter),
		Type:  KMeansTypeReduce,
		Cost:  km.reduceCost,
		Body:  km.reduceBody(),
		Iter:  iter,
		OnComplete: func(g *dag.Graph, _ *dag.Task) {
			if iter+1 < km.MaxIters && !km.converged {
				km.addIteration(g, iter+1)
			}
		},
	}
	g.Add(reduce, assigns...)
}

// Inertia returns the sum of squared distances of points to their assigned
// centroids — the clustering quality measure used by tests.
func (km *KMeans) Inertia() float64 {
	total := 0.0
	D := km.D
	for p := 0; p < km.N; p++ {
		c := km.Centroids[km.Assign[p]*D : (km.Assign[p]+1)*D]
		pt := km.Points[p*D : (p+1)*D]
		for d := 0; d < D; d++ {
			diff := pt[d] - c[d]
			total += diff * diff
		}
	}
	return total
}
