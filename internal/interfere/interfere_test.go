package interfere

import (
	"math"
	"testing"

	"dynasym/internal/machine"
	"dynasym/internal/topology"
)

func newModel() *machine.Model {
	return machine.New(topology.TX2())
}

func TestCoRunCPU(t *testing.T) {
	m := newModel()
	CoRunCPU(m, []int{0, 2}, 0.5)
	for _, c := range []int{0, 2} {
		if v := m.CoreAvail(c).At(3); v != 0.5 {
			t.Fatalf("core %d avail %g, want 0.5", c, v)
		}
	}
	if v := m.CoreAvail(1).At(3); v != 1.0 {
		t.Fatal("untouched core lost availability")
	}
}

func TestCoRunCPUEpisode(t *testing.T) {
	m := newModel()
	CoRunCPUEpisode(m, []int{1}, 0.4, 2, 5)
	p := m.CoreAvail(1)
	for _, c := range []struct{ at, want float64 }{
		{1, 1}, {2, 0.4}, {4.9, 0.4}, {5, 1},
	} {
		if v := p.At(c.at); v != c.want {
			t.Fatalf("At(%g) = %g, want %g", c.at, v, c.want)
		}
	}
}

func TestCoRunMemory(t *testing.T) {
	m := newModel()
	CoRunMemory(m, 0, 0.5, 0.8)
	if v := m.CoreAvail(0).At(0); v != 0.5 {
		t.Fatal("victim core not time-shared")
	}
	base := m.Platform().Cluster(0).MemBandwidth
	if v := m.ClusterBandwidth(0).At(0); math.Abs(v-base*0.8) > 1 {
		t.Fatalf("cluster bandwidth %g, want %g", v, base*0.8)
	}
	// The other cluster keeps its bandwidth.
	if v := m.ClusterBandwidth(1).At(0); v != m.Platform().Cluster(1).MemBandwidth {
		t.Fatal("non-victim cluster bandwidth changed")
	}
}

func TestPaperDVFS(t *testing.T) {
	m := newModel()
	PaperDVFS(m, 0)
	f := m.ClusterFreq(0)
	if v := f.At(0); v != 2035e6 {
		t.Fatalf("high phase %g", v)
	}
	if v := f.At(7); v != 345e6 {
		t.Fatalf("low phase %g", v)
	}
	if v := f.At(12); v != 2035e6 {
		t.Fatalf("wrap-around %g", v)
	}
}

func TestStall(t *testing.T) {
	m := newModel()
	Stall(m, 3, 1, 2)
	p := m.CoreAvail(3)
	if p.At(1.5) != 0 {
		t.Fatal("stall not applied")
	}
	if p.At(2.5) != 1 {
		t.Fatal("stall did not end")
	}
	if SlowestAvail(m, 3) != 0 {
		t.Fatal("SlowestAvail wrong")
	}
}

func TestFlaky(t *testing.T) {
	m := newModel()
	Flaky(m, 2, 0.3, 1, 1)
	p := m.CoreAvail(2)
	if p.At(0.5) != 1 || p.At(1.5) != 0.3 || p.At(2.5) != 1 {
		t.Fatal("flaky wave wrong")
	}
}
