package interfere

import (
	"math"
	"testing"

	"dynasym/internal/topology"
)

func TestBurstCPUPhaseShifts(t *testing.T) {
	m := newModel()
	cores := []int{2, 3, 4, 5}
	BurstCPU(m, cores, 0.4, 1, 2, 0, 1)
	// Core 2 (phase 0): burst active at t=0.5, idle at t=1.5.
	if v := m.CoreAvail(2).At(0.5); v != 0.4 {
		t.Fatalf("core 2 at 0.5: %g, want 0.4", v)
	}
	if v := m.CoreAvail(2).At(1.5); v != 1.0 {
		t.Fatalf("core 2 at 1.5: %g, want 1.0", v)
	}
	// Core 3 is shifted one second left: its wave at t equals core 2's at
	// t+1 (away from boundaries).
	for _, tm := range []float64{0.2, 0.7, 1.4, 2.6, 5.1} {
		if a, b := m.CoreAvail(3).At(tm), m.CoreAvail(2).At(tm+1); a != b {
			t.Fatalf("phase shift broken at t=%g: core3=%g core2(t+1)=%g", tm, a, b)
		}
	}
	// Untouched cores keep full availability.
	if v := m.CoreAvail(0).At(0.5); v != 1.0 {
		t.Fatal("untouched core lost availability")
	}
	// The staggered bursts never all fire at once with this geometry:
	// at any time at least one of the four cores is fully available.
	for tm := 0.05; tm < 6; tm += 0.1 {
		all := true
		for _, c := range cores {
			if m.CoreAvail(c).At(tm) == 1.0 {
				all = false
				break
			}
		}
		if all {
			t.Fatalf("all cores bursted simultaneously at t=%g", tm)
		}
	}
}

func TestThrottleRamp(t *testing.T) {
	m := newModel()
	base := m.Platform().Cluster(0).BaseHz
	ThrottleRamp(m, 0, 2, 6, 0.25, 4)
	p := m.ClusterFreq(0)
	// Before the ramp: base frequency.
	if v := p.At(1); v != base {
		t.Fatalf("pre-ramp freq %g, want %g", v, base)
	}
	// The clock only decreases, in steps, down to the floor.
	prev := p.At(0)
	for tm := 0.25; tm < 10; tm += 0.25 {
		v := p.At(tm)
		if v > prev {
			t.Fatalf("clock recovered at t=%g: %g after %g", tm, v, prev)
		}
		prev = v
	}
	// After the ramp: the floor, forever.
	floor := 0.25 * base
	for _, tm := range []float64{6, 7, 1e6} {
		if v := p.At(tm); math.Abs(v-floor) > 1e-6*base {
			t.Fatalf("post-ramp freq at %g: %g, want %g", tm, v, floor)
		}
	}
	// The first step starts exactly at from=2.
	if v := p.At(2.01); v >= base {
		t.Fatalf("ramp did not start at from: %g", v)
	}
}

func TestScaleOutPreset(t *testing.T) {
	topo := topology.ScaleOut(4, 4)
	if topo.NumCores() != 16 || topo.NumClusters() != 4 {
		t.Fatalf("got %d cores in %d clusters", topo.NumCores(), topo.NumClusters())
	}
	// Speeds alternate big/little.
	for i := 0; i < 4; i++ {
		want := 4.0
		if i%2 == 1 {
			want = 1.0
		}
		if got := topo.Cluster(i).Speed; got != want {
			t.Errorf("cluster %d speed %g, want %g", i, got, want)
		}
	}
	// Widths are the powers of two up to the cluster size.
	c := topo.Cluster(0)
	if len(c.Widths) != 3 || c.Widths[0] != 1 || c.Widths[2] != 4 {
		t.Errorf("widths %v, want [1 2 4]", c.Widths)
	}
	if topo.FastestCluster() != 0 {
		t.Errorf("fastest cluster %d, want 0", topo.FastestCluster())
	}
}
