// Package interfere builds the paper's interference scenarios by installing
// time-varying profiles into a machine model:
//
//   - co-running applications that time-share victim cores (CPU
//     interference) and optionally consume memory bandwidth (memory
//     interference);
//   - DVFS square waves on a cluster's clock (power-management
//     interference).
//
// The scenarios only touch the model; the schedulers observe them purely
// through task execution times, exactly as applications observe real
// interference.
package interfere

import (
	"math"

	"dynasym/internal/machine"
	"dynasym/internal/profile"
)

// CoRunCPU models a compute-bound co-runner (the paper's serial matmul
// chain) pinned to the given cores for the whole run: the OS time-shares
// each victim core, leaving `share` of its cycles to the runtime (0.5 for
// one equal-priority co-runner).
func CoRunCPU(m *machine.Model, cores []int, share float64) {
	for _, c := range cores {
		m.SetCoreAvail(c, profile.Constant(share))
	}
}

// CoRunCPUEpisode is CoRunCPU limited to the interval [from, to) seconds.
func CoRunCPUEpisode(m *machine.Model, cores []int, share, from, to float64) {
	for _, c := range cores {
		m.SetCoreAvail(c, profile.Episode(1.0, share, from, to))
	}
}

// CoRunMemory models a memory-bound co-runner (the paper's serial copy
// chain) pinned to one core: the victim core time-shares its cycles and the
// whole victim cluster loses a fraction of its memory bandwidth to the
// co-runner's streaming.
func CoRunMemory(m *machine.Model, core int, share, bwFactor float64) {
	m.SetCoreAvail(core, profile.Constant(share))
	ci := m.Platform().ClusterOf(core)
	base := m.Platform().Cluster(ci).MemBandwidth
	m.SetClusterBandwidth(ci, profile.Constant(base*bwFactor))
}

// DVFS installs the paper's power-management scenario: the cluster's clock
// alternates between hiHz (for hiDur seconds) and loHz (for loDur seconds),
// repeating forever. The paper uses 2035 MHz / 345 MHz with 5 s + 5 s.
func DVFS(m *machine.Model, cluster int, hiHz, loHz, hiDur, loDur float64) {
	m.SetClusterFreq(cluster, profile.SquareWave(hiHz, loHz, hiDur, loDur))
}

// The exact DVFS wave parameters from the paper's Section 5.2: the Denver
// cluster alternates between its frequency extremes every five seconds.
const (
	PaperHiHz  = 2035e6
	PaperLoHz  = 345e6
	PaperHiDur = 5.0
	PaperLoDur = 5.0
)

// PaperDVFS applies the exact DVFS parameters from the paper's Section 5.2
// to the given cluster.
func PaperDVFS(m *machine.Model, cluster int) {
	DVFS(m, cluster, PaperHiHz, PaperLoHz, PaperHiDur, PaperLoDur)
}

// BurstCPU models intermittent bursty co-runners on the victim cores: on
// each core the interferer is active for busyDur seconds (leaving `share`
// of the core to the runtime) and sleeps for idleDur seconds, repeating
// forever. Successive cores' waves are shifted by phaseStep seconds
// starting from phase0, so the bursts sweep across the victim set instead
// of firing in lock-step — the hardest case for a scheduler that has just
// learned where the quiet cores are.
func BurstCPU(m *machine.Model, cores []int, share, busyDur, idleDur, phase0, phaseStep float64) {
	for i, c := range cores {
		phase := phase0 + float64(i)*phaseStep
		m.SetCoreAvail(c, profile.PhasedSquareWave(share, 1.0, busyDur, idleDur, phase))
	}
}

// ThrottleRamp models a thermal throttle of a cluster: the clock steps down
// from the cluster's base frequency to floor×base over [from, to) in
// `steps` equal plateaus and stays at the floor afterwards (heat soak, no
// recovery). Unlike the DVFS square wave the degradation is gradual and
// permanent, so schedulers must keep re-learning a moving target.
func ThrottleRamp(m *machine.Model, cluster int, from, to, floor float64, steps int) {
	base := m.Platform().Cluster(cluster).BaseHz
	if steps < 1 {
		steps = 1
	}
	var segs []profile.Segment
	if from > 0 {
		segs = append(segs, profile.Segment{Start: 0, Value: base})
	}
	for k := 0; k < steps; k++ {
		start := from + (to-from)*float64(k)/float64(steps)
		value := base * (1 - (1-floor)*float64(k+1)/float64(steps))
		segs = append(segs, profile.Segment{Start: start, Value: value})
	}
	m.SetClusterFreq(cluster, profile.MustSteps(segs...))
}

// Stall models a transient full stall of a core (failure injection beyond
// the paper: the core contributes nothing during [from, to)). Schedulers
// must route around it or wait it out.
func Stall(m *machine.Model, core int, from, to float64) {
	m.SetCoreAvail(core, profile.Episode(1.0, 0.0, from, to))
}

// Flaky installs a repeating availability square wave on a core: available
// for upDur seconds, then only `share` available for downDur seconds.
func Flaky(m *machine.Model, core int, share, upDur, downDur float64) {
	m.SetCoreAvail(core, profile.SquareWave(1.0, share, upDur, downDur))
}

// SlowestAvail returns the minimum availability the model ever assigns to
// the core (diagnostics for tests).
func SlowestAvail(m *machine.Model, core int) float64 {
	p := m.CoreAvail(core)
	if p == nil {
		return math.NaN()
	}
	return p.Min()
}
