package kernels

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"dynasym/internal/dag"
	"dynasym/internal/xrand"
)

func TestRowRangeCoversExactly(t *testing.T) {
	check := func(nRaw, widthRaw uint8) bool {
		n := int(nRaw)%200 + 1
		width := int(widthRaw)%8 + 1
		covered := 0
		prevHi := 0
		for p := 0; p < width; p++ {
			lo, hi := rowRange(n, p, width)
			if lo != prevHi {
				return false // gaps or overlaps
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// runMembers executes a body once per member, concurrently, as the real
// runtime does.
func runMembers(body func(dag.Exec), width int) {
	var wg sync.WaitGroup
	for p := 0; p < width; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			body(dag.Exec{Part: p, Width: width, Leader: 0, Worker: p})
		}(p)
	}
	wg.Wait()
}

func TestMatMulMatchesReference(t *testing.T) {
	for _, width := range []int{1, 2, 3, 4} {
		m := NewMatMul(24, xrand.New(1))
		runMembers(m.Body, width)
		want := m.Reference()
		for i := range want {
			if math.Abs(m.C[i]-want[i]) > 1e-9 {
				t.Fatalf("width %d: C[%d] = %g, want %g", width, i, m.C[i], want[i])
			}
		}
	}
}

func TestCopyCopies(t *testing.T) {
	for _, width := range []int{1, 3} {
		c := NewCopy(33, xrand.New(2))
		runMembers(c.Body, width)
		for i := range c.Src {
			if c.Dst[i] != c.Src[i] {
				t.Fatalf("width %d: Dst[%d] differs", width, i)
			}
		}
	}
}

func TestStencilWidthInvariance(t *testing.T) {
	// The multi-sweep stencil must produce identical results regardless
	// of the width it executes at (the internal barrier synchronizes
	// sweeps).
	ref := NewStencil(20, 4, xrand.New(3))
	runMembers(ref.Body, 1)
	for _, width := range []int{2, 4} {
		s := NewStencil(20, 4, xrand.New(3))
		runMembers(s.Body, width)
		got, want := s.Result(), ref.Result()
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("width %d diverges at %d: %g vs %g", width, i, got[i], want[i])
			}
		}
	}
}

func TestStencilBoundariesFixed(t *testing.T) {
	s := NewStencil(16, 3, xrand.New(4))
	before := append([]float64(nil), s.a...)
	runMembers(s.Body, 2)
	n := s.N
	res := s.Result()
	for j := 0; j < n; j++ {
		if res[j] != before[j] || res[(n-1)*n+j] != before[(n-1)*n+j] {
			t.Fatal("boundary rows were modified")
		}
	}
}

func TestSpinBarrierRounds(t *testing.T) {
	b := NewSpinBarrier()
	const width = 4
	const rounds = 50
	counts := make([]int, width)
	var wg sync.WaitGroup
	for p := 0; p < width; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				counts[p]++
				b.Wait(width)
			}
		}(p)
	}
	wg.Wait()
	for p, c := range counts {
		if c != rounds {
			t.Fatalf("member %d did %d rounds", p, c)
		}
	}
}

func TestSpinBarrierWidthOneNoop(t *testing.T) {
	b := NewSpinBarrier()
	b.Wait(1) // must not block
}

func TestCostShapes(t *testing.T) {
	mm := MatMulCost(64)
	cp := CopyCost(1024)
	st := StencilCost(1024, 1)
	// MatMul is compute-heavy: ops per byte far above Copy's.
	if mm.Ops/mm.Bytes <= cp.Ops/cp.Bytes {
		t.Fatal("MatMul should have higher arithmetic intensity than Copy")
	}
	// Copy cannot benefit from caches.
	if cp.WorkingSet != 0 {
		t.Fatal("Copy must declare a streaming (zero) working set")
	}
	// Stencil is in between.
	if !(st.Ops/st.Bytes > cp.Ops/cp.Bytes) {
		t.Fatal("Stencil should be more compute-intense than Copy")
	}
	// Cubic vs quadratic growth.
	if MatMulCost(128).Ops/mm.Ops < 7.9 {
		t.Fatal("MatMul ops should grow cubically with tile size")
	}
}

func TestChecksumDeterministic(t *testing.T) {
	xs := []float64{1.5, -2.25, 3.75}
	if Checksum(xs) != Checksum([]float64{1.5, -2.25, 3.75}) {
		t.Fatal("checksum not deterministic")
	}
	if Checksum(xs) == Checksum([]float64{1.5, 3.75, -2.25}) {
		t.Fatal("checksum ignores order")
	}
}

func BenchmarkMatMul64Width1(b *testing.B) {
	m := NewMatMul(64, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Body(dag.Exec{Part: 0, Width: 1})
	}
}

func BenchmarkStencil256(b *testing.B) {
	s := NewStencil(256, 1, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Body(dag.Exec{Part: 0, Width: 1})
	}
}
