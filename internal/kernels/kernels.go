// Package kernels provides the three task kernels the paper's synthetic
// DAGs are built from — MatMul (compute-intensive), Copy (memory-intensive)
// and Stencil (cache-intensive) — in two forms that must stay consistent:
//
//  1. Real, partitionable Go implementations executed by the real runtime:
//     every member of a moldable place calls Body with its partition index.
//  2. Analytic cost descriptors (machine.Cost) consumed by the simulator's
//     roofline model.
//
// Task types are stable across the repository so Performance Trace Tables
// can be shared between runs.
package kernels

import (
	"dynasym/internal/dag"
	"dynasym/internal/machine"
	"dynasym/internal/ptt"
	"dynasym/internal/xrand"
)

// Stable task type ids for the built-in kernels. Applications define their
// own ids starting from TypeUser.
const (
	TypeMatMul ptt.TypeID = iota
	TypeCopy
	TypeStencil
	TypeComm // distributed boundary-exchange tasks
	TypeUser // first id available to applications
)

// Calibration constants converting kernel arithmetic into the machine
// model's abstract ops (cycles on a speed-1.0 core). They encode sustained
// operations-per-cycle for scalar, gcc-compiled code on in-order-ish mobile
// cores, calibrated so simulated per-task times land in the millisecond
// range the paper's TX2 throughputs imply (e.g. ~3300 MatMul-64 tasks/s on
// six cores).
// The matmul rate is back-solved from the paper's TX2 numbers (an A57 takes
// ~3 ms per 64×64×64 tile, i.e. ~0.086 sustained flops/cycle for unblocked
// scalar gcc 5.4 code with cold tiles).
const (
	matmulFlopsPerCycle  = 0.086 // scalar triple loop, cold tiles
	copyCyclesPerElement = 0.25  // pure streaming, cheap address math
	stencilFlopsPerCycle = 0.5   // add-heavy with reuse stalls
)

// MatMulCost returns the cost descriptor for one n×n×n tile multiplication
// (C += A×B on float64 tiles). Row partitioning replicates the B tile
// stream across members (SharedBytes) and parallelizes poorly at small
// tiles, hence the large width penalty.
func MatMulCost(n int) machine.Cost {
	nn := float64(n)
	return machine.Cost{
		Ops:          2 * nn * nn * nn / matmulFlopsPerCycle,
		Bytes:        2 * 8 * nn * nn, // A rows in, C rows out
		SharedBytes:  8 * nn * nn,     // every member streams all of B
		WorkingSet:   2 * 8 * nn * nn,
		SyncSeconds:  3e-6,
		WidthPenalty: 0.15,
	}
}

// CopyCost returns the cost descriptor for copying an n×n float64 matrix.
// Streaming: the working set is declared zero so caches cannot help, and
// row partitions split perfectly.
func CopyCost(n int) machine.Cost {
	nn := float64(n)
	return machine.Cost{
		Ops:          copyCyclesPerElement * nn * nn,
		Bytes:        2 * 8 * nn * nn,
		WorkingSet:   0,
		SyncSeconds:  2e-6,
		WidthPenalty: 0.05,
	}
}

// StencilCost returns the cost descriptor for `sweeps` 5-point Jacobi
// sweeps over an n×n float64 grid. Repeated sweeps make it cache-sensitive:
// if the two grids fit in cache, only the first sweep streams from DRAM.
// The per-sweep member barrier shows up as a width penalty between Copy's
// and MatMul's.
func StencilCost(n, sweeps int) machine.Cost {
	nn := float64(n)
	s := float64(sweeps)
	return machine.Cost{
		Ops:          6 * nn * nn * s / stencilFlopsPerCycle,
		Bytes:        2 * 8 * nn * nn * s,
		WorkingSet:   2 * 8 * nn * nn,
		SyncSeconds:  3e-6,
		WidthPenalty: 0.15,
	}
}

// rowRange splits n rows among width members and returns member part's
// half-open row interval. The first rows%width members take one extra row.
func rowRange(n, part, width int) (lo, hi int) {
	base := n / width
	extra := n % width
	lo = part*base + min(part, extra)
	hi = lo + base
	if part < extra {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MatMul holds the operand tiles for one matrix-multiplication task.
type MatMul struct {
	N       int
	A, B, C []float64
}

// NewMatMul allocates an n×n multiplication with pseudo-random operands.
func NewMatMul(n int, r *xrand.RNG) *MatMul {
	m := &MatMul{N: n, A: make([]float64, n*n), B: make([]float64, n*n), C: make([]float64, n*n)}
	for i := range m.A {
		m.A[i] = r.Float64() - 0.5
		m.B[i] = r.Float64() - 0.5
	}
	return m
}

// Body computes this member's rows of C += A×B using an ikj loop order that
// streams B rows through cache. Partitioning is by rows of C, so members
// never write the same elements.
func (m *MatMul) Body(e dag.Exec) {
	lo, hi := rowRange(m.N, e.Part, e.Width)
	n := m.N
	for i := lo; i < hi; i++ {
		ci := m.C[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			a := m.A[i*n+k]
			bk := m.B[k*n : (k+1)*n]
			for j, b := range bk {
				ci[j] += a * b
			}
		}
	}
}

// Reference computes the full product serially into a fresh slice, for
// correctness tests.
func (m *MatMul) Reference() []float64 {
	n := m.N
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a := m.A[i*n+k]
			for j := 0; j < n; j++ {
				out[i*n+j] += a * m.B[k*n+j]
			}
		}
	}
	return out
}

// Copy holds the buffers for one matrix-copy task.
type Copy struct {
	N        int
	Src, Dst []float64
}

// NewCopy allocates an n×n copy task with pseudo-random source data.
func NewCopy(n int, r *xrand.RNG) *Copy {
	c := &Copy{N: n, Src: make([]float64, n*n), Dst: make([]float64, n*n)}
	for i := range c.Src {
		c.Src[i] = r.Float64()
	}
	return c
}

// Body copies this member's rows from Src to Dst.
func (c *Copy) Body(e dag.Exec) {
	lo, hi := rowRange(c.N, e.Part, e.Width)
	copy(c.Dst[lo*c.N:hi*c.N], c.Src[lo*c.N:hi*c.N])
}

// Stencil holds the grids for one multi-sweep 5-point Jacobi task. Sweeps
// alternate between the two grids; members synchronize between sweeps on an
// internal barrier because row partitions read their neighbours' boundary
// rows.
type Stencil struct {
	N      int
	Sweeps int
	a, b   []float64
	bar    *SpinBarrier
}

// NewStencil allocates an n×n stencil task performing the given number of
// sweeps, with pseudo-random initial state.
func NewStencil(n, sweeps int, r *xrand.RNG) *Stencil {
	s := &Stencil{N: n, Sweeps: sweeps, a: make([]float64, n*n), b: make([]float64, n*n), bar: NewSpinBarrier()}
	for i := range s.a {
		s.a[i] = r.Float64()
	}
	copy(s.b, s.a)
	return s
}

// Body performs this member's rows of each sweep, with a barrier between
// sweeps. Boundary rows (0 and N-1) are held fixed.
func (s *Stencil) Body(e dag.Exec) {
	n := s.N
	lo, hi := rowRange(n-2, e.Part, e.Width)
	lo, hi = lo+1, hi+1 // interior rows only
	src, dst := s.a, s.b
	for sweep := 0; sweep < s.Sweeps; sweep++ {
		for i := lo; i < hi; i++ {
			row := i * n
			up := row - n
			down := row + n
			for j := 1; j < n-1; j++ {
				dst[row+j] = 0.2 * (src[row+j] + src[row+j-1] + src[row+j+1] + src[up+j] + src[down+j])
			}
		}
		if e.Width > 1 {
			s.bar.Wait(e.Width)
		}
		src, dst = dst, src
	}
}

// Result returns the grid holding the final sweep's output.
func (s *Stencil) Result() []float64 {
	if s.Sweeps%2 == 1 {
		return s.b
	}
	return s.a
}

// Checksum returns a deterministic digest of a float64 slice for
// correctness tests (order-sensitive fold of the bit patterns).
func Checksum(xs []float64) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for _, x := range xs {
		bits := uint64(int64(x * 1e6)) // quantize to absorb fp reassociation
		h ^= bits
		h *= 1099511628211
	}
	return h
}
