package kernels

import (
	"runtime"
	"sync/atomic"
)

// SpinBarrier is a reusable sense-reversing barrier for the members of one
// moldable task. Widths are small (≤ the largest cluster) and waits are
// short, so spinning with Gosched is cheaper than channel parking.
type SpinBarrier struct {
	arrived atomic.Int32
	gen     atomic.Uint32
}

// NewSpinBarrier returns a barrier ready for use by any number of rounds.
func NewSpinBarrier() *SpinBarrier { return &SpinBarrier{} }

// Wait blocks until width participants have called Wait for the current
// round. The last arriver resets the barrier and releases the others, so
// the same barrier can be reused for subsequent rounds.
func (b *SpinBarrier) Wait(width int) {
	if width <= 1 {
		return
	}
	g := b.gen.Load()
	if b.arrived.Add(1) == int32(width) {
		b.arrived.Store(0)
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == g {
		runtime.Gosched()
	}
}
