// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used for every source of randomness in the repository:
// stealing victim selection, measurement jitter, and synthetic data
// generation. Centralizing randomness here keeps experiment runs exactly
// reproducible from a single seed, which the discrete-event simulator
// depends on.
//
// The generator is PCG-XSH-RR 64/32 (O'Neill, 2014), implemented directly so
// the repository does not depend on math/rand's global state or version
// -dependent stream changes.
package xrand

import "math"

// RNG is a deterministic pseudo-random number generator. It is not safe for
// concurrent use; give each goroutine (or simulated core) its own RNG via
// Split.
type RNG struct {
	state uint64
	inc   uint64
}

const (
	pcgMultiplier = 6364136223846793005
	pcgInit       = 0x853c49e6748fea9b
	pcgIncInit    = 0xda3e39cb94b95bdb
)

// New returns an RNG seeded with seed. Two RNGs built from the same seed
// produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{state: pcgInit, inc: pcgIncInit | 1}
	r.state += seed
	r.next()
	return r
}

// Reseed returns r to the exact state New(seed) produces, so pooled
// runtimes can reuse RNG allocations across runs with byte-identical
// streams.
func (r *RNG) Reseed(seed uint64) {
	r.state = pcgInit + seed
	r.inc = pcgIncInit | 1
	r.next()
}

// Split derives an independent RNG from r in a deterministic way. The child
// stream is decorrelated from the parent by mixing the parent's next output
// into both the state and the stream increment.
func (r *RNG) Split() *RNG {
	child := &RNG{}
	r.SplitInto(child)
	return child
}

// SplitInto is Split writing into an existing RNG, for allocation-free
// reuse. child ends in exactly the state Split's fresh RNG would have.
func (r *RNG) SplitInto(child *RNG) {
	a := uint64(r.next())<<32 | uint64(r.next())
	b := uint64(r.next())<<32 | uint64(r.next())
	child.state = a
	child.inc = (b << 1) | 1
	child.next()
}

// next advances the generator and returns 32 fresh bits.
func (r *RNG) next() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	return uint64(r.next())<<32 | uint64(r.next())
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *RNG) Uint32() uint32 { return r.next() }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method over 32 bits is plenty for
	// the ranges used here (queue counts, core counts, data sizes).
	bound := uint32(n)
	threshold := -bound % bound
	for {
		x := r.next()
		m := uint64(x) * uint64(bound)
		if uint32(m) >= threshold {
			return int(m >> 32)
		}
	}
}

// Int63 returns a uniformly distributed non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Jitter returns a multiplicative noise factor 1+eps where eps is normally
// distributed with the given relative standard deviation, clamped so the
// factor stays positive (>= 0.05).
func (r *RNG) Jitter(relStd float64) float64 {
	f := 1 + relStd*r.NormFloat64()
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the order of the first n elements using
// the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
