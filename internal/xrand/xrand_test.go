package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			t.Fatalf("sibling streams collide at step %d", i)
		}
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestJitterPositive(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		if f := r.Jitter(0.5); f < 0.05 {
			t.Fatalf("Jitter returned %v < 0.05", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(29)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
