// Package xtr is the real (wall-clock) task runtime: a Go reimplementation
// of the XiTAO execution model the paper builds on. One goroutine per
// virtual core runs the same protocol as the simulator (internal/simrt):
// per-worker Work-Stealing Queues, per-core FIFO Assembly Queues, moldable
// task execution with a rendezvous per assembly, online PTT updates from
// measured execution times, and policy-driven wake/dispatch placement.
//
// The same core.Policy values drive both runtimes, so schedules observed in
// simulation transfer directly to real execution. On Linux, workers can be
// pinned to CPUs (best effort) to approximate one-worker-per-core.
package xtr

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dynasym/internal/affinity"
	"dynasym/internal/core"
	"dynasym/internal/dag"
	"dynasym/internal/metrics"
	"dynasym/internal/ptt"
	"dynasym/internal/topology"
	"dynasym/internal/xrand"
)

// Config configures a real runtime.
type Config struct {
	// Topo defines the virtual cores (= workers) and their clustering.
	// Required. Note that real speeds come from the host machine; the
	// platform's Speed fields only affect the FA family's notion of the
	// "fast" cluster.
	Topo *topology.Platform
	// Policy is the scheduling policy. Required.
	Policy core.Policy
	// Alpha is the PTT new-observation weight; <= 0 selects the paper's
	// 1/5 default.
	Alpha float64
	// Seed drives stealing randomness.
	Seed uint64
	// Collector receives metrics; nil allocates a private one.
	Collector *metrics.Collector
	// Registry supplies pre-trained trace tables; nil allocates fresh.
	Registry *ptt.Registry
	// Pin requests best-effort thread-to-CPU pinning (Linux only).
	Pin bool
	// IdleSleep is how long an idle worker sleeps between steal sweeps.
	// Default 50 µs.
	IdleSleep time.Duration
}

// assembly is one committed moldable execution.
type assembly struct {
	task    *dag.Task
	place   topology.Place
	arrived atomic.Int32
	started atomic.Int64 // nanoseconds since run start; 0 = not started
	done    atomic.Int32
}

// worker is one virtual core.
type worker struct {
	id  int
	rng *xrand.RNG

	mu  sync.Mutex
	wsq []*dag.Task
	aq  []*assembly

	steals     int64
	dispatches int64
}

// Runtime executes task graphs with real parallelism.
type Runtime struct {
	cfg     Config
	topo    *topology.Platform
	policy  core.Policy
	reg     *ptt.Registry
	coll    *metrics.Collector
	rr      atomic.Uint64
	workers []*worker
	graph   *dag.Graph

	start    time.Time
	finished atomic.Bool
	doneCh   chan struct{}
	wg       sync.WaitGroup
	makespan atomic.Int64 // nanoseconds
}

// New validates the configuration and builds a runtime.
func New(cfg Config) (*Runtime, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("xtr: Config.Topo is required")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("xtr: Config.Policy is required")
	}
	if cfg.IdleSleep <= 0 {
		cfg.IdleSleep = 50 * time.Microsecond
	}
	rt := &Runtime{
		cfg:    cfg,
		topo:   cfg.Topo,
		policy: cfg.Policy,
		reg:    cfg.Registry,
		coll:   cfg.Collector,
		doneCh: make(chan struct{}),
	}
	if rt.reg == nil {
		rt.reg = ptt.NewRegistry(cfg.Topo, cfg.Alpha)
	}
	if rt.coll == nil {
		rt.coll = metrics.NewCollector(cfg.Topo)
	}
	root := xrand.New(cfg.Seed)
	rt.workers = make([]*worker, cfg.Topo.NumCores())
	for i := range rt.workers {
		rt.workers[i] = &worker{id: i, rng: root.Split()}
	}
	return rt, nil
}

// Collector returns the runtime's metrics collector.
func (rt *Runtime) Collector() *metrics.Collector { return rt.coll }

// Registry returns the runtime's PTT registry.
func (rt *Runtime) Registry() *ptt.Registry { return rt.reg }

// Run executes the graph to completion and returns the collector.
func (rt *Runtime) Run(g *dag.Graph) (*metrics.Collector, error) {
	if rt.graph != nil {
		return nil, fmt.Errorf("xtr: runtime already used; create a new one per run")
	}
	rt.graph = g
	rt.start = time.Now()
	ready := g.Start()
	if len(ready) == 0 && g.Outstanding() > 0 {
		return nil, fmt.Errorf("xtr: graph has %d tasks but none ready (cycle?)", g.Outstanding())
	}
	if g.Outstanding() == 0 {
		rt.coll.SetMakespan(0)
		return rt.coll, nil
	}
	for _, t := range ready {
		rt.wakeTask(t, 0)
	}
	rt.wg.Add(len(rt.workers))
	for _, w := range rt.workers {
		go rt.workerLoop(w)
	}
	rt.wg.Wait()
	if !rt.finished.Load() {
		return nil, fmt.Errorf("xtr: workers exited with %d tasks outstanding", g.Outstanding())
	}
	rt.coll.SetMakespan(rt.seconds(rt.makespan.Load()))
	return rt.coll, nil
}

// seconds converts runtime-relative nanoseconds to seconds.
func (rt *Runtime) seconds(ns int64) float64 { return float64(ns) / 1e9 }

// now returns nanoseconds since run start.
func (rt *Runtime) now() int64 { return time.Since(rt.start).Nanoseconds() }

// table returns the PTT for a task type, or nil when the policy has no
// model.
func (rt *Runtime) table(id ptt.TypeID) *ptt.Table {
	if !rt.policy.UsesPTT() {
		return nil
	}
	return rt.reg.Get(id)
}

func (rt *Runtime) ctx(self int, t *dag.Task, rng *xrand.RNG) *core.Context {
	return &core.Context{
		Self:  self,
		High:  t.High,
		Type:  t.Type,
		Table: rt.table(t.Type),
		Topo:  rt.topo,
		Rand:  rng,
		RR:    &rt.rr,
	}
}

// wakeTask routes a newly ready task to a WSQ (wake-time placement).
func (rt *Runtime) wakeTask(t *dag.Task, waker int) {
	w := rt.workers[waker]
	leader, ok := rt.policy.WakePlace(rt.ctx(waker, t, w.rng))
	if !ok {
		leader = waker
	}
	target := rt.workers[leader]
	target.mu.Lock()
	target.wsq = append(target.wsq, t)
	target.mu.Unlock()
}

// popLocal implements the worker's own-queue disciplines: pending
// high-priority task first (criticality-aware policies), then LIFO.
func (w *worker) popLocal(preferHigh bool) (*dag.Task, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.wsq)
	if n == 0 {
		return nil, false
	}
	idx := n - 1
	if preferHigh && !w.wsq[idx].High {
		for i := n - 2; i >= 0; i-- {
			if w.wsq[i].High {
				idx = i
				break
			}
		}
	}
	t := w.wsq[idx]
	copy(w.wsq[idx:], w.wsq[idx+1:])
	w.wsq[n-1] = nil
	w.wsq = w.wsq[:n-1]
	return t, true
}

// popHigh removes the newest high-priority task, if any.
func (w *worker) popHigh() (*dag.Task, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := len(w.wsq) - 1; i >= 0; i-- {
		if w.wsq[i].High {
			t := w.wsq[i]
			copy(w.wsq[i:], w.wsq[i+1:])
			w.wsq[len(w.wsq)-1] = nil
			w.wsq = w.wsq[:len(w.wsq)-1]
			return t, true
		}
	}
	return nil, false
}

// stealOldest removes the oldest stealable task from the victim.
func (w *worker) stealOldest(allowHigh bool) (*dag.Task, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, t := range w.wsq {
		if allowHigh || !t.High {
			copy(w.wsq[i:], w.wsq[i+1:])
			w.wsq[len(w.wsq)-1] = nil
			w.wsq = w.wsq[:len(w.wsq)-1]
			return t, true
		}
	}
	return nil, false
}

// popAssembly takes the next committed assembly from the worker's AQ.
func (w *worker) popAssembly() (*assembly, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.aq) == 0 {
		return nil, false
	}
	a := w.aq[0]
	copy(w.aq, w.aq[1:])
	w.aq[len(w.aq)-1] = nil
	w.aq = w.aq[:len(w.aq)-1]
	return a, true
}

// dispatchMu serializes multi-queue AQ insertion so the relative order of
// any two assemblies is identical in every queue they share (keeps the
// rendezvous deadlock-free, as in the simulator).
var dispatchMu sync.Mutex

// dispatch runs the final placement decision and inserts the assembly.
func (rt *Runtime) dispatch(w *worker, t *dag.Task) {
	pl := rt.policy.DispatchPlace(rt.ctx(w.id, t, w.rng))
	if !rt.topo.Valid(pl) {
		panic(fmt.Sprintf("xtr: policy %s produced invalid place %v", rt.policy.Name(), pl))
	}
	t.MarkRunning()
	a := &assembly{task: t, place: pl}
	dispatchMu.Lock()
	for i := 0; i < pl.Width; i++ {
		m := rt.workers[pl.Leader+i]
		m.mu.Lock()
		if t.High && pl.Width == 1 {
			// Width-1 high-priority assemblies jump the queue (safe: no
			// rendezvous, so no circular wait can form).
			m.aq = append(m.aq, nil)
			copy(m.aq[1:], m.aq)
			m.aq[0] = a
		} else {
			m.aq = append(m.aq, a)
		}
		m.mu.Unlock()
	}
	dispatchMu.Unlock()
	atomic.AddInt64(&w.dispatches, 1)
}

// join participates in an assembly: arrive, rendezvous, execute this
// member's partition, and let the last member commit the task.
func (rt *Runtime) join(w *worker, a *assembly) {
	width := a.place.Width
	if a.arrived.Add(1) == int32(width) {
		a.started.Store(rt.now())
	} else {
		for a.started.Load() == 0 {
			runtime.Gosched()
		}
	}
	part := w.id - a.place.Leader
	if a.task.Body != nil {
		a.task.Body(dag.Exec{Part: part, Width: width, Leader: a.place.Leader, Worker: w.id})
	}
	if a.done.Add(1) != int32(width) {
		return
	}
	// Last member: measure, update the model, commit, wake dependents.
	finish := rt.now()
	startS := rt.seconds(a.started.Load())
	finishS := rt.seconds(finish)
	if tbl := rt.table(a.task.Type); tbl != nil {
		tbl.Update(a.place, finishS-startS)
	}
	rt.coll.TaskDone(a.place, a.task.High, a.task.Type, a.task.Iter, startS, finishS)
	ready, drained := rt.graph.Complete(a.task)
	for _, t := range ready {
		rt.wakeTask(t, a.place.Leader)
	}
	if drained {
		rt.makespan.Store(finish)
		rt.finished.Store(true)
		close(rt.doneCh)
	}
}

// workerLoop is the per-core scheduling loop, mirroring the simulator's
// step function: waiting high-priority dispatches first, then committed
// assemblies, then local tasks, then stealing.
func (rt *Runtime) workerLoop(w *worker) {
	defer rt.wg.Done()
	if rt.cfg.Pin && affinity.Supported() {
		if err := affinity.Pin(w.id); err == nil {
			defer affinity.Unpin()
		}
	}
	preferHigh := !rt.policy.AllowPrioritySteal()
	for {
		if preferHigh {
			if t, ok := w.popHigh(); ok {
				rt.dispatch(w, t)
				continue
			}
		}
		if a, ok := w.popAssembly(); ok {
			rt.join(w, a)
			continue
		}
		if t, ok := w.popLocal(preferHigh); ok {
			rt.dispatch(w, t)
			continue
		}
		if t, ok := rt.trySteal(w); ok {
			atomic.AddInt64(&w.steals, 1)
			rt.dispatch(w, t)
			continue
		}
		select {
		case <-rt.doneCh:
			// Drain any assemblies we still owe a rendezvous to.
			if a, ok := w.popAssembly(); ok {
				rt.join(w, a)
				continue
			}
			return
		default:
			time.Sleep(rt.cfg.IdleSleep)
		}
	}
}

// trySteal sweeps the other workers from a random start.
func (rt *Runtime) trySteal(w *worker) (*dag.Task, bool) {
	n := len(rt.workers)
	if n <= 1 {
		return nil, false
	}
	allowHigh := rt.policy.AllowPrioritySteal()
	start := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := rt.workers[(start+i)%n]
		if v == w {
			continue
		}
		if t, ok := v.stealOldest(allowHigh); ok {
			return t, true
		}
	}
	return nil, false
}

// Stats exposes per-worker counters.
type Stats struct {
	Steals, Dispatches int64
}

// WorkerStats returns per-worker counters.
func (rt *Runtime) WorkerStats() []Stats {
	out := make([]Stats, len(rt.workers))
	for i, w := range rt.workers {
		out[i] = Stats{
			Steals:     atomic.LoadInt64(&w.steals),
			Dispatches: atomic.LoadInt64(&w.dispatches),
		}
	}
	return out
}

// SpinLoad starts n busy-spinning OS threads as a synthetic interfering
// application (the real-mode counterpart of the paper's co-runner). Stop it
// by closing the returned channel's companion stop function.
func SpinLoad(n int) (stop func()) {
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			x := 1.0
			for {
				select {
				case <-stopCh:
					_ = x
					return
				default:
					for j := 0; j < 1024; j++ {
						x = x*1.000000001 + 0.000001
					}
				}
			}
		}()
	}
	return func() {
		close(stopCh)
		wg.Wait()
	}
}
