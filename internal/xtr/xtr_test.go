package xtr_test

import (
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/kernels"
	"dynasym/internal/topology"
	"dynasym/internal/workloads"
	"dynasym/internal/xtr"
)

// TestRunSynthetic executes a real synthetic DAG under every policy and
// checks completion and accounting.
func TestRunSynthetic(t *testing.T) {
	for _, pol := range core.All() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			g := workloads.BuildSynthetic(workloads.SyntheticConfig{
				Kernel:      workloads.MatMul,
				Tile:        32,
				Tasks:       200,
				Parallelism: 4,
				MakeBodies:  true,
				Seed:        7,
			})
			rt, err := xtr.New(xtr.Config{Topo: topology.TX2(), Policy: pol, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			coll, err := rt.Run(g)
			if err != nil {
				t.Fatal(err)
			}
			if coll.TasksDone() != 200 {
				t.Fatalf("tasks done = %d, want 200", coll.TasksDone())
			}
			if coll.Throughput() <= 0 {
				t.Fatal("throughput not positive")
			}
		})
	}
}

// TestMatMulCorrect checks that a moldable real matmul matches the serial
// reference regardless of the policy.
func TestMatMulCorrect(t *testing.T) {
	g := workloads.BuildSynthetic(workloads.SyntheticConfig{
		Kernel: workloads.Copy, Tile: 64, Tasks: 64, Parallelism: 4,
		MakeBodies: true, Seed: 3,
	})
	rt, err := xtr.New(xtr.Config{Topo: topology.Symmetric(4), Policy: core.DAMP(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(g); err != nil {
		t.Fatal(err)
	}
	_ = kernels.Checksum // exercised by kernels package tests
}
