package xtr_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"dynasym/internal/core"
	"dynasym/internal/dag"
	"dynasym/internal/ptt"
	"dynasym/internal/topology"
	"dynasym/internal/xtr"
)

// moldEverything is a test policy that molds every task across the whole
// platform, exercising the real assembly rendezvous at maximum width.
type moldEverything struct {
	core.Policy
	topo *topology.Platform
}

func (m moldEverything) Name() string { return "mold-all" }
func (m moldEverything) DispatchPlace(*core.Context) topology.Place {
	return topology.Place{Leader: 0, Width: m.topo.NumCores()}
}

func TestMoldableExecutesEveryPart(t *testing.T) {
	topo := topology.Symmetric(4)
	g := dag.New()
	const tasks = 50
	var parts [4]atomic.Int32
	var widthErr atomic.Int32
	for i := 0; i < tasks; i++ {
		g.Add(&dag.Task{
			Label: "mold",
			Body: func(e dag.Exec) {
				if e.Width != 4 {
					widthErr.Add(1)
					return
				}
				parts[e.Part].Add(1)
			},
		})
	}
	rt, err := xtr.New(xtr.Config{Topo: topo, Policy: moldEverything{core.RWS(), topo}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(g); err != nil {
		t.Fatal(err)
	}
	if widthErr.Load() != 0 {
		t.Fatalf("%d bodies saw a wrong width", widthErr.Load())
	}
	for p := 0; p < 4; p++ {
		if parts[p].Load() != tasks {
			t.Fatalf("partition %d executed %d times, want %d", p, parts[p].Load(), tasks)
		}
	}
}

// TestPTTLearnsFromRealExecution checks that real wall-clock spans populate
// the trace tables.
func TestPTTLearnsFromRealExecution(t *testing.T) {
	topo := topology.Symmetric(2)
	g := dag.New()
	spin := func(dag.Exec) {
		x := 1.0
		for i := 0; i < 200000; i++ {
			x = x*1.0000001 + 1e-9
		}
		_ = x
	}
	var prev *dag.Task
	for i := 0; i < 30; i++ {
		t := &dag.Task{Label: "spin", Type: 3, Body: spin}
		if prev == nil {
			g.Add(t)
		} else {
			g.Add(t, prev)
		}
		prev = t
	}
	rt, err := xtr.New(xtr.Config{Topo: topo, Policy: core.DAMC(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(g); err != nil {
		t.Fatal(err)
	}
	tbl := rt.Registry().Get(ptt.TypeID(3))
	measured := 0
	for _, v := range tbl.Snapshot() {
		if v > 0 {
			measured++
		}
	}
	if measured == 0 {
		t.Fatal("no PTT entries measured from real execution")
	}
}

// TestConcurrentGraphsIndependentRuntimes runs two runtimes concurrently to
// shake out shared-state bugs (the dispatch mutex is package-global).
func TestConcurrentGraphsIndependentRuntimes(t *testing.T) {
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := dag.New()
			var count atomic.Int32
			for j := 0; j < 100; j++ {
				g.Add(&dag.Task{Body: func(dag.Exec) { count.Add(1) }})
			}
			rt, err := xtr.New(xtr.Config{Topo: topology.Symmetric(2), Policy: core.RWS(), Seed: uint64(i)})
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = rt.Run(g)
			if count.Load() != 100 {
				t.Errorf("runtime %d executed %d bodies", i, count.Load())
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("runtime %d: %v", i, err)
		}
	}
}
