package topology

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	base := func() []Cluster {
		return []Cluster{
			{Name: "a", FirstCore: 0, NumCores: 2, Widths: []int{1, 2}, Speed: 1, BaseHz: 1e9},
			{Name: "b", FirstCore: 2, NumCores: 4, Widths: []int{1, 2, 4}, Speed: 1, BaseHz: 1e9},
		}
	}
	if _, err := New(base()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]Cluster) []Cluster
	}{
		{"empty", func([]Cluster) []Cluster { return nil }},
		{"gap", func(cs []Cluster) []Cluster { cs[1].FirstCore = 3; return cs }},
		{"zero cores", func(cs []Cluster) []Cluster { cs[0].NumCores = 0; return cs }},
		{"bad speed", func(cs []Cluster) []Cluster { cs[0].Speed = 0; return cs }},
		{"bad freq", func(cs []Cluster) []Cluster { cs[0].BaseHz = -1; return cs }},
		{"width too big", func(cs []Cluster) []Cluster { cs[0].Widths = []int{1, 4}; return cs }},
		{"width not divisor", func(cs []Cluster) []Cluster { cs[1].Widths = []int{1, 3}; return cs }},
		{"duplicate width", func(cs []Cluster) []Cluster { cs[0].Widths = []int{1, 2, 2}; return cs }},
		{"missing width 1", func(cs []Cluster) []Cluster { cs[0].Widths = []int{2}; return cs }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.mutate(base())); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestTX2Shape(t *testing.T) {
	p := TX2()
	if p.NumCores() != 6 {
		t.Fatalf("TX2 has %d cores, want 6", p.NumCores())
	}
	if p.NumClusters() != 2 {
		t.Fatalf("TX2 has %d clusters, want 2", p.NumClusters())
	}
	// Places: denver (C0,1),(C0,2),(C1,1); a57 (C2..5,1),(C2,2),(C4,2),(C2,4).
	if got := len(p.Places()); got != 10 {
		t.Fatalf("TX2 has %d places, want 10", got)
	}
	if p.FastestCluster() != 0 {
		t.Fatal("TX2 fastest cluster should be the Denver cluster (0)")
	}
	if p.MaxWidth() != 4 {
		t.Fatalf("TX2 max width %d, want 4", p.MaxWidth())
	}
}

func TestPlaceFor(t *testing.T) {
	p := TX2()
	cases := []struct {
		core, width int
		wantLeader  int
		ok          bool
	}{
		{0, 1, 0, true},
		{1, 2, 0, true}, // aligned down to leader 0
		{3, 2, 2, true},
		{5, 4, 2, true},
		{0, 4, 0, false}, // denver has no width 4
		{2, 3, 0, false},
	}
	for _, tc := range cases {
		pl, ok := p.PlaceFor(tc.core, tc.width)
		if ok != tc.ok {
			t.Fatalf("PlaceFor(%d,%d) ok=%v want %v", tc.core, tc.width, ok, tc.ok)
		}
		if ok && pl.Leader != tc.wantLeader {
			t.Fatalf("PlaceFor(%d,%d) leader=%d want %d", tc.core, tc.width, pl.Leader, tc.wantLeader)
		}
	}
}

func TestPlaceIDRoundTrip(t *testing.T) {
	p := HaswellClusterN(2)
	for id, pl := range p.Places() {
		if got := p.PlaceID(pl); got != id {
			t.Fatalf("PlaceID(%v) = %d, want %d", pl, got, id)
		}
		if !p.Valid(pl) {
			t.Fatalf("place %v reported invalid", pl)
		}
	}
	if p.PlaceID(Place{Leader: 1, Width: 2}) != -1 {
		t.Fatal("misaligned place reported valid")
	}
	if p.PlaceID(Place{Leader: 999, Width: 1}) != -1 {
		t.Fatal("out-of-range place reported valid")
	}
}

func TestMembers(t *testing.T) {
	p := TX2()
	m := p.Members(Place{Leader: 2, Width: 4})
	want := []int{2, 3, 4, 5}
	for i, c := range want {
		if m[i] != c {
			t.Fatalf("Members = %v, want %v", m, want)
		}
	}
}

func TestCoresOfAndClusterOf(t *testing.T) {
	p := TX2()
	for ci := 0; ci < p.NumClusters(); ci++ {
		for _, core := range p.CoresOf(ci) {
			if p.ClusterOf(core) != ci {
				t.Fatalf("core %d reported in cluster %d, want %d", core, p.ClusterOf(core), ci)
			}
		}
	}
}

// Property: every valid place returned by PlaceFor contains the queried
// core and is aligned to its width.
func TestPlaceForProperty(t *testing.T) {
	p := Haswell16()
	check := func(coreRaw, widthRaw uint8) bool {
		core := int(coreRaw) % p.NumCores()
		widths := p.WidthsFor(core)
		width := widths[int(widthRaw)%len(widths)]
		pl, ok := p.PlaceFor(core, width)
		if !ok {
			return false
		}
		if !p.Valid(pl) {
			return false
		}
		if core < pl.Leader || core >= pl.Leader+pl.Width {
			return false
		}
		base := p.Cluster(p.ClusterOf(core)).FirstCore
		return (pl.Leader-base)%pl.Width == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetric(t *testing.T) {
	p := Symmetric(8)
	if p.NumCores() != 8 || p.NumClusters() != 1 {
		t.Fatalf("Symmetric(8): %d cores, %d clusters", p.NumCores(), p.NumClusters())
	}
	if p.MaxWidth() != 8 {
		t.Fatalf("Symmetric(8) max width %d", p.MaxWidth())
	}
}

func TestHaswellClusterNodes(t *testing.T) {
	p := HaswellClusterN(4)
	if p.NumCores() != 80 {
		t.Fatalf("4-node cluster has %d cores, want 80", p.NumCores())
	}
	if p.Cluster(0).NodeID != 0 || p.Cluster(7).NodeID != 3 {
		t.Fatal("node ids not assigned per socket pair")
	}
}

func TestPlaceString(t *testing.T) {
	if s := (Place{Leader: 2, Width: 4}).String(); s != "(C2,4)" {
		t.Fatalf("Place.String() = %q", s)
	}
}
