// Package topology describes the execution platform: cores grouped into
// clusters (resource partitions) that share a cache level and a memory
// channel, and the set of valid execution places on them.
//
// The model follows the paper's platform section: cores share an ISA but not
// necessarily performance; meaningful resource partitions are sets of cores
// sharing caches or memory channels (what hwloc would report). An execution
// place is a tuple (leader core, resource width): `width` consecutive cores
// of one cluster, aligned to the width, that cooperate on one moldable task.
package topology

import (
	"fmt"
	"sort"
	"strings"
)

// Cluster is one resource partition: a set of contiguous cores sharing a
// last-level cache and a memory channel. Widths lists the resource widths
// supported for tasks on this cluster (e.g. 1,2,4 on a quad-core cluster).
type Cluster struct {
	// Name identifies the cluster in reports ("denver", "a57", "socket0").
	Name string
	// FirstCore is the global id of the cluster's first core.
	FirstCore int
	// NumCores is the number of cores in the cluster.
	NumCores int
	// Widths are the valid resource widths, sorted ascending. Each width
	// must divide evenly into aligned sub-partitions (powers of two on the
	// platforms modeled here, but any divisor chain works).
	Widths []int
	// Speed is the static relative performance of one core of this cluster
	// (instructions per cycle × relative issue capability). A Denver core
	// at 2.0 does twice the work per cycle of an A57 core at 1.0.
	Speed float64
	// BaseHz is the nominal clock frequency in Hz used when no DVFS
	// profile overrides it.
	BaseHz float64
	// L1Bytes is the per-core L1 data cache capacity.
	L1Bytes int
	// L2Bytes is the cluster's shared L2 (or LLC) capacity.
	L2Bytes int
	// MemBandwidth is the cluster's share of memory bandwidth in bytes/s,
	// shared by all cores of the cluster.
	MemBandwidth float64
	// NodeID identifies the distributed-memory node this cluster belongs
	// to. Single-node platforms use 0 everywhere.
	NodeID int
}

// Place is an execution place: Width cores led by (and including) Leader.
// Valid places are aligned: (Leader - cluster.FirstCore) % Width == 0.
type Place struct {
	Leader int
	Width  int
}

// String renders the place like the paper's figures: "(C2,4)".
func (p Place) String() string { return fmt.Sprintf("(C%d,%d)", p.Leader, p.Width) }

// Platform is an immutable description of the machine. Build one with New
// and share it freely; all methods are safe for concurrent use.
type Platform struct {
	clusters []Cluster
	nCores   int
	// coreCluster[i] is the index into clusters for core i.
	coreCluster []int
	// places enumerates every valid execution place, ordered by leader
	// core then width. Index with PlaceIndex.
	places []Place
	// placeIndex[leader][width] = position in places, or -1.
	placeIndex [][]int
	// localPlaceIDs[core] lists the dense ids of the aligned places that
	// contain core, one per supported width in ascending width order (so
	// entry 0 is always the width-1 place led by core). Schedulers walk it
	// on every dispatch decision instead of re-deriving PlaceFor per width.
	localPlaceIDs [][]int32
	maxWidth      int
}

// New validates the cluster list and builds a Platform. Clusters must tile
// the core space contiguously starting at core 0, and every width must be
// between 1 and the cluster size and divide the cluster size.
func New(clusters []Cluster) (*Platform, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("topology: no clusters")
	}
	p := &Platform{clusters: append([]Cluster(nil), clusters...)}
	next := 0
	for i := range p.clusters {
		c := &p.clusters[i]
		if c.FirstCore != next {
			return nil, fmt.Errorf("topology: cluster %q starts at core %d, want %d (clusters must tile cores contiguously)", c.Name, c.FirstCore, next)
		}
		if c.NumCores <= 0 {
			return nil, fmt.Errorf("topology: cluster %q has %d cores", c.Name, c.NumCores)
		}
		if c.Speed <= 0 {
			return nil, fmt.Errorf("topology: cluster %q has non-positive speed %v", c.Name, c.Speed)
		}
		if c.BaseHz <= 0 {
			return nil, fmt.Errorf("topology: cluster %q has non-positive base frequency %v", c.Name, c.BaseHz)
		}
		if len(c.Widths) == 0 {
			c.Widths = []int{1}
		}
		sort.Ints(c.Widths)
		seen := map[int]bool{}
		for _, w := range c.Widths {
			if w < 1 || w > c.NumCores {
				return nil, fmt.Errorf("topology: cluster %q width %d out of range 1..%d", c.Name, w, c.NumCores)
			}
			if c.NumCores%w != 0 {
				return nil, fmt.Errorf("topology: cluster %q width %d does not divide cluster size %d", c.Name, w, c.NumCores)
			}
			if seen[w] {
				return nil, fmt.Errorf("topology: cluster %q has duplicate width %d", c.Name, w)
			}
			seen[w] = true
		}
		if !seen[1] {
			return nil, fmt.Errorf("topology: cluster %q must support width 1", c.Name)
		}
		next += c.NumCores
	}
	p.nCores = next
	p.coreCluster = make([]int, p.nCores)
	for ci := range p.clusters {
		c := &p.clusters[ci]
		for i := 0; i < c.NumCores; i++ {
			p.coreCluster[c.FirstCore+i] = ci
		}
	}
	p.placeIndex = make([][]int, p.nCores)
	for core := 0; core < p.nCores; core++ {
		c := &p.clusters[p.coreCluster[core]]
		row := make([]int, c.Widths[len(c.Widths)-1]+1)
		for i := range row {
			row[i] = -1
		}
		for _, w := range c.Widths {
			if (core-c.FirstCore)%w == 0 {
				row[w] = len(p.places)
				p.places = append(p.places, Place{Leader: core, Width: w})
				if w > p.maxWidth {
					p.maxWidth = w
				}
			}
		}
		p.placeIndex[core] = row
	}
	p.localPlaceIDs = make([][]int32, p.nCores)
	for core := 0; core < p.nCores; core++ {
		c := &p.clusters[p.coreCluster[core]]
		ids := make([]int32, len(c.Widths))
		for i, w := range c.Widths {
			leader := c.FirstCore + (core-c.FirstCore)/w*w
			ids[i] = int32(p.placeIndex[leader][w])
		}
		p.localPlaceIDs[core] = ids
	}
	return p, nil
}

// MustNew is New but panics on error; intended for package-level presets and
// tests.
func MustNew(clusters []Cluster) *Platform {
	p, err := New(clusters)
	if err != nil {
		panic(err)
	}
	return p
}

// NumCores returns the total number of cores.
func (p *Platform) NumCores() int { return p.nCores }

// NumClusters returns the number of resource partitions.
func (p *Platform) NumClusters() int { return len(p.clusters) }

// Cluster returns the cluster description with the given index.
func (p *Platform) Cluster(i int) Cluster { return p.clusters[i] }

// ClusterOf returns the index of the cluster containing core.
func (p *Platform) ClusterOf(core int) int { return p.coreCluster[core] }

// ClusterOfCore returns the cluster description containing core.
func (p *Platform) ClusterOfCore(core int) Cluster {
	return p.clusters[p.coreCluster[core]]
}

// MaxWidth returns the largest valid width on any cluster.
func (p *Platform) MaxWidth() int { return p.maxWidth }

// Places returns every valid execution place, ordered by leader core then
// width. The returned slice must not be modified.
func (p *Platform) Places() []Place { return p.places }

// PlaceID returns a dense identifier for a valid place, or -1 if the place
// is not valid on this platform.
func (p *Platform) PlaceID(pl Place) int {
	if pl.Leader < 0 || pl.Leader >= p.nCores {
		return -1
	}
	row := p.placeIndex[pl.Leader]
	if pl.Width < 0 || pl.Width >= len(row) {
		return -1
	}
	return row[pl.Width]
}

// Valid reports whether pl is a valid execution place.
func (p *Platform) Valid(pl Place) bool { return p.PlaceID(pl) >= 0 }

// PlaceFor returns the aligned place of the given width that contains core.
// It returns false if the width is not supported on core's cluster.
func (p *Platform) PlaceFor(core, width int) (Place, bool) {
	c := &p.clusters[p.coreCluster[core]]
	ok := false
	for _, w := range c.Widths {
		if w == width {
			ok = true
			break
		}
	}
	if !ok {
		return Place{}, false
	}
	leader := c.FirstCore + (core-c.FirstCore)/width*width
	return Place{Leader: leader, Width: width}, true
}

// WidthsFor returns the widths supported by core's cluster. The returned
// slice must not be modified.
func (p *Platform) WidthsFor(core int) []int {
	return p.clusters[p.coreCluster[core]].Widths
}

// LocalPlaceIDs returns the dense ids of the aligned places containing
// core, one per supported width in ascending width order; entry 0 is the
// width-1 place (core, 1). The returned slice must not be modified.
func (p *Platform) LocalPlaceIDs(core int) []int32 { return p.localPlaceIDs[core] }

// Members returns the core ids covered by the place.
func (p *Platform) Members(pl Place) []int {
	m := make([]int, pl.Width)
	for i := range m {
		m[i] = pl.Leader + i
	}
	return m
}

// FastestCluster returns the index of the cluster with the highest static
// single-core rate (Speed × BaseHz). This is the "fixed asymmetry" notion
// used by the FA/FAM-C schedulers: on the TX2 it selects the Denver cluster.
func (p *Platform) FastestCluster() int {
	best, bestRate := 0, 0.0
	for i, c := range p.clusters {
		rate := c.Speed * c.BaseHz
		if rate > bestRate {
			best, bestRate = i, rate
		}
	}
	return best
}

// CoresOf returns the core ids belonging to cluster i.
func (p *Platform) CoresOf(i int) []int {
	c := p.clusters[i]
	cores := make([]int, c.NumCores)
	for j := range cores {
		cores[j] = c.FirstCore + j
	}
	return cores
}

// String summarizes the platform for logs and reports.
func (p *Platform) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "platform(%d cores", p.nCores)
	for _, c := range p.clusters {
		fmt.Fprintf(&b, "; %s: cores %d-%d speed %.2g @%.3g GHz widths %v",
			c.Name, c.FirstCore, c.FirstCore+c.NumCores-1, c.Speed, c.BaseHz/1e9, c.Widths)
	}
	b.WriteString(")")
	return b.String()
}
