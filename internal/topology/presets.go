package topology

import "fmt"

// Preset platforms mirroring the paper's two evaluation machines. The cache
// sizes and frequencies are taken from the paper (TX2: 2 MB L2 per cluster,
// 32 KB A57 / 64 KB Denver L1D, 2035/345 MHz DVFS extremes) and public
// Haswell specs. Speeds are relative sustained work rates per clock: the
// paper states Denver cores are "generally faster" than A57 cores, and
// back-solving its absolute throughputs (Fig. 4a: RWS ≈ 900 vs DAM ≈ 3100
// tasks/s, capacity ≈ 3300 at P=6) puts the Denver:A57 gap near 4× for the
// scalar compute kernels; 4.0 vs 1.0 reproduces those ratios.

// TX2 returns the NVIDIA Jetson TX2 platform: a dual-core Denver cluster
// (cores 0-1) and a quad-core ARM A57 cluster (cores 2-5), each with a
// private 2 MB L2. This matches the core numbering used by the paper's
// Figure 5 (cores 0,1 = Denver; 2-5 = A57).
func TX2() *Platform {
	return MustNew([]Cluster{
		{
			Name:         "denver",
			FirstCore:    0,
			NumCores:     2,
			Widths:       []int{1, 2},
			Speed:        4.0,
			BaseHz:       2.035e9,
			L1Bytes:      64 << 10,
			L2Bytes:      2 << 20,
			MemBandwidth: 30e9,
		},
		{
			Name:         "a57",
			FirstCore:    2,
			NumCores:     4,
			Widths:       []int{1, 2, 4},
			Speed:        1.0,
			BaseHz:       2.035e9,
			L1Bytes:      32 << 10,
			L2Bytes:      2 << 20,
			MemBandwidth: 30e9,
		},
	})
}

// HaswellNode returns one dual-socket 10-core Intel Xeon E5-2650v3 node:
// two symmetric 10-core clusters (sockets), 25 MB LLC each. nodeID tags the
// clusters for distributed runs.
func HaswellNode(nodeID int) *Platform {
	return MustNew(haswellClusters(nodeID, 0))
}

// haswellClusters builds the two socket clusters of one Haswell node with
// core ids starting at firstCore.
func haswellClusters(nodeID, firstCore int) []Cluster {
	mk := func(name string, first int) Cluster {
		return Cluster{
			Name:         name,
			FirstCore:    first,
			NumCores:     10,
			Widths:       []int{1, 2, 5, 10},
			Speed:        1.6,
			BaseHz:       2.3e9,
			L1Bytes:      32 << 10,
			L2Bytes:      25 << 20,
			MemBandwidth: 60e9,
			NodeID:       nodeID,
		}
	}
	return []Cluster{
		mk("socket0", firstCore),
		mk("socket1", firstCore+10),
	}
}

// Haswell16 returns the 16-core dual-socket Haswell configuration used in
// the paper's K-means experiment (Figure 9): two symmetric 8-core sockets.
func Haswell16() *Platform {
	mk := func(name string, first int) Cluster {
		return Cluster{
			Name:         name,
			FirstCore:    first,
			NumCores:     8,
			Widths:       []int{1, 2, 4, 8},
			Speed:        1.6,
			BaseHz:       2.3e9,
			L1Bytes:      32 << 10,
			L2Bytes:      20 << 20,
			MemBandwidth: 60e9,
		}
	}
	return MustNew([]Cluster{mk("socket0", 0), mk("socket1", 8)})
}

// HaswellClusterN returns an n-node distributed platform of dual-socket
// 10-core Haswell nodes modeled as one flat core space (node i owns cores
// [20i, 20i+20)). The distributed experiments use the NodeID fields to
// derive rank ownership.
func HaswellClusterN(n int) *Platform {
	var cs []Cluster
	for node := 0; node < n; node++ {
		for _, c := range haswellClusters(node, node*20) {
			c.Name = c.Name + nodeSuffix(node)
			cs = append(cs, c)
		}
	}
	return MustNew(cs)
}

func nodeSuffix(node int) string {
	const digits = "0123456789"
	if node < 10 {
		return "@n" + digits[node:node+1]
	}
	return "@n" + digits[node/10:node/10+1] + digits[node%10:node%10+1]
}

// ScaleOut returns a large asymmetric platform for scalability scenarios
// beyond the paper's machines: nClusters clusters of coresPer cores each,
// alternating fast ("big", 4× work per clock) and slow ("little") clusters,
// with power-of-two widths up to the cluster size. 4×4 gives a 16-core
// TX2-style board; 8×8 a 64-core many-cluster server. The O(K) Sampled
// search is aimed at exactly these place counts.
func ScaleOut(nClusters, coresPer int) *Platform {
	var widths []int
	for w := 1; w <= coresPer; w *= 2 {
		if coresPer%w == 0 {
			widths = append(widths, w)
		}
	}
	var cs []Cluster
	for i := 0; i < nClusters; i++ {
		c := Cluster{
			FirstCore:    i * coresPer,
			NumCores:     coresPer,
			Widths:       append([]int(nil), widths...),
			BaseHz:       2.0e9,
			MemBandwidth: 40e9,
			L2Bytes:      4 << 20,
		}
		if i%2 == 0 {
			c.Name = fmt.Sprintf("big%d", i)
			c.Speed = 4.0
			c.L1Bytes = 64 << 10
		} else {
			c.Name = fmt.Sprintf("little%d", i)
			c.Speed = 1.0
			c.L1Bytes = 32 << 10
		}
		cs = append(cs, c)
	}
	return MustNew(cs)
}

// Symmetric returns a single-cluster platform with n identical cores and
// power-of-two widths up to n (n must be a power of two). Useful for unit
// tests and the quickstart example.
func Symmetric(n int) *Platform {
	widths := []int{}
	for w := 1; w <= n; w *= 2 {
		widths = append(widths, w)
	}
	return MustNew([]Cluster{{
		Name:         "cpu",
		FirstCore:    0,
		NumCores:     n,
		Widths:       widths,
		Speed:        1.0,
		BaseHz:       2e9,
		L1Bytes:      32 << 10,
		L2Bytes:      8 << 20,
		MemBandwidth: 40e9,
	}})
}
